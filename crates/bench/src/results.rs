//! The machine-readable result schema of `moheco-run` and the CI baseline
//! gate built on it.
//!
//! One run of one scenario produces one [`ScenarioResult`], serialized as a
//! flat JSON object with a stable key order (`RESULTS_<scenario>.json`). The
//! engine counters are embedded under an `engine_` prefix straight from
//! [`EngineStatsSnapshot::counter_fields`], so the runtime instrumentation
//! and the result schema cannot drift apart silently.
//!
//! CI commits one baseline file per scenario under `baselines/` and re-runs
//! the harness on every push; [`compare_results`] fails the build on
//!
//! * **schema drift** — the key set of the fresh result differs from the
//!   baseline's (a new field means the baselines must be regenerated
//!   deliberately, in the same PR), or an identity field (scenario, algo,
//!   budget, seed, engine) changed;
//! * **yield deviation** — the reported yield moved by more than
//!   [`YIELD_TOLERANCE`] (5 percentage points) from the committed value.
//!
//! Timing fields (`wall_time_ms`, `engine_busy_nanos`) and the simulation
//! counters are *reported* in the one-line trend summary but never gated:
//! they vary across hosts, while the gated fields are deterministic in
//! `(scenario, algo, budget, seed)` up to libm rounding.
//!
//! No serialization crates exist in this build environment, so the module
//! carries its own minimal JSON writer and parser.

use moheco_obs::PhaseBreakdown;
use moheco_runtime::{EngineStatsSnapshot, EngineTiming};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Version of the result schema; bump when a field is added, removed or
/// re-interpreted (and regenerate `baselines/`).
///
/// v2 added the `estimator` identity field and the `ci_half_width` outcome
/// field (the pluggable variance-reduction estimator layer). v3 added the
/// `prescreen` identity field and the `prescreen_skips` outcome field (the
/// surrogate candidate-prescreening stage). v4 is the campaign layer: the
/// per-run record gains the `engine_evicted_blocks` counter (bounded-memory
/// cache), a deterministic one-line JSONL form ([`ScenarioResult::
/// to_jsonl_row`]) streams per-(scenario, algo, seed) campaign cells, and
/// committed baselines become multi-seed [`AggregateResult`] records
/// (`seeds` + mean/median/std/CI fields) gated on the aggregate median —
/// a single-seed point estimate can pass or fail on seed noise alone, so
/// the trust boundary moved to statistics over repeated runs. v5 is the
/// observability layer: `engine_busy_nanos` now comes from the segregated
/// [`EngineTiming`] struct instead of the counter snapshot, and a traced
/// run's pretty file carries a compact `phase_breakdown` summary (treated
/// like a timing field, so never in JSONL rows; the full span stream lives in the
/// `--obs jsonl:` event file read by `moheco-profile`).
pub const SCHEMA_VERSION: u64 = 5;

/// Maximum allowed absolute deviation of `best_yield` from the committed
/// baseline (5 percentage points, per the CI gating policy).
pub const YIELD_TOLERANCE: f64 = 0.05;

/// The result record of one `moheco-run` scenario execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Registry name of the scenario.
    pub scenario: String,
    /// Algorithm label (`de`, `ga`, `memetic`, `two-stage`).
    pub algo: String,
    /// Budget-class label (`tiny`, `small`, `paper`).
    pub budget: String,
    /// Engine label (`serial`, `parallel`).
    pub engine: String,
    /// Variance-reduction estimator label (`mc`, `lhs`, `antithetic`, `is`).
    pub estimator: String,
    /// Surrogate-prescreen label (`off`, `rsb`).
    pub prescreen: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Number of design variables.
    pub dimension: u64,
    /// Number of statistical variables.
    pub statistical_dimension: u64,
    /// Whether the run ended with a feasible best design.
    pub feasible: bool,
    /// Reported yield of the best design.
    pub best_yield: f64,
    /// 95 % confidence-interval half-width of the final yield estimate,
    /// computed with the estimator's own variance formula (0 when no
    /// feasible design was found).
    pub ci_half_width: f64,
    /// Closed-form true yield of the best design (synthetic scenarios).
    pub true_yield: Option<f64>,
    /// `|best_yield - true_yield|`, when the truth is known.
    pub true_yield_abs_error: Option<f64>,
    /// Simulations executed by the run.
    pub simulations: u64,
    /// Generations executed.
    pub generations: u64,
    /// Nelder-Mead local searches triggered (memetic runs).
    pub local_searches: u64,
    /// Candidates the surrogate prescreen vetoed (0 when prescreening is
    /// off). For `memetic` / `two-stage` runs these are candidates demoted
    /// from their stage-1 OCBA seat to the probe budget; for `de` / `ga`
    /// runs they are trial vectors discarded without any evaluation.
    pub prescreen_skips: u64,
    /// FNV-1a digest of the per-generation trace (yield history + spend).
    pub trace_digest: String,
    /// Wall-clock time of the run in milliseconds (reported, never gated).
    pub wall_time_ms: f64,
    /// Engine instrumentation snapshot (deterministic counters only).
    pub engine_stats: EngineStatsSnapshot,
    /// Engine wall-clock accounting, segregated from the gated counters.
    pub engine_timing: EngineTiming,
    /// Per-phase budget attribution of the run; empty unless the run was
    /// traced. Like the other timing-adjacent data it appears only in the
    /// pretty per-run file (compact form), never in JSONL rows.
    pub phase_breakdown: PhaseBreakdown,
}

/// Formats a float for the flat-JSON writers (full round-trip precision so
/// baselines don't lose information; integral values keep a `.0` suffix so
/// they stay visibly floats).
pub fn fmt_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map(fmt_f64).unwrap_or_else(|| "null".to_string())
}

impl ScenarioResult {
    /// The `(key, rendered value)` pairs of the record in schema order.
    /// `timing` controls whether the host-dependent fields (`wall_time_ms`,
    /// `engine_busy_nanos`) are included: the pretty per-run file keeps
    /// them, the campaign JSONL row drops them so the row is a pure
    /// function of `(scenario, algo, budget, seed, engine, estimator,
    /// prescreen)` — which is what makes resumed campaigns byte-identical
    /// and campaign rows comparable to standalone `moheco-run` output.
    fn fields(&self, timing: bool) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = Vec::with_capacity(32);
        let mut field = |k: &str, v: String| out.push((k.to_string(), v));
        field("schema_version", SCHEMA_VERSION.to_string());
        field("scenario", format!("\"{}\"", self.scenario));
        field("algo", format!("\"{}\"", self.algo));
        field("budget", format!("\"{}\"", self.budget));
        field("engine", format!("\"{}\"", self.engine));
        field("estimator", format!("\"{}\"", self.estimator));
        field("prescreen", format!("\"{}\"", self.prescreen));
        field("seed", self.seed.to_string());
        field("dimension", self.dimension.to_string());
        field(
            "statistical_dimension",
            self.statistical_dimension.to_string(),
        );
        field("feasible", self.feasible.to_string());
        field("best_yield", fmt_f64(self.best_yield));
        field("ci_half_width", fmt_f64(self.ci_half_width));
        field("true_yield", fmt_opt(self.true_yield));
        field("true_yield_abs_error", fmt_opt(self.true_yield_abs_error));
        field("simulations", self.simulations.to_string());
        field("generations", self.generations.to_string());
        field("local_searches", self.local_searches.to_string());
        field("prescreen_skips", self.prescreen_skips.to_string());
        field("trace_digest", format!("\"{}\"", self.trace_digest));
        if timing {
            field("wall_time_ms", fmt_f64(self.wall_time_ms));
            field(
                "engine_busy_nanos",
                self.engine_timing.busy_nanos.to_string(),
            );
        }
        for (name, value) in self.engine_stats.counter_fields() {
            field(&format!("engine_{name}"), value.to_string());
        }
        field("engine_hit_rate", fmt_f64(self.engine_stats.hit_rate()));
        if timing && !self.phase_breakdown.is_empty() {
            field(
                "phase_breakdown",
                format!("\"{}\"", self.phase_breakdown.to_compact()),
            );
        }
        out
    }

    /// Serializes the result as a flat JSON object with a stable key order.
    pub fn to_json(&self) -> String {
        let fields = self.fields(true);
        let mut out = String::from("{\n");
        for (i, (k, v)) in fields.iter().enumerate() {
            let comma = if i + 1 == fields.len() { "" } else { "," };
            let _ = writeln!(out, "  \"{k}\": {v}{comma}");
        }
        out.push_str("}\n");
        out
    }

    /// Serializes the *deterministic* fields as a single JSONL line
    /// (newline included): the campaign row format. Timing fields are
    /// excluded, so two runs of the same cell — standalone, inside a
    /// campaign, or after a campaign resume — produce byte-identical rows.
    pub fn to_jsonl_row(&self) -> String {
        let fields = self.fields(false);
        let mut out = String::from("{");
        for (i, (k, v)) in fields.iter().enumerate() {
            let comma = if i + 1 == fields.len() { "" } else { ", " };
            let _ = write!(out, "\"{k}\": {v}{comma}");
        }
        out.push_str("}\n");
        out
    }

    /// The file name the harness writes this result to.
    pub fn file_name(&self) -> String {
        format!("RESULTS_{}.json", self.scenario)
    }
}

/// A parsed JSON scalar (the schema is flat; nested values are rejected).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (no escape handling beyond `\"` — the schema needs none).
    Str(String),
}

impl JsonValue {
    fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A parsed flat JSON object, key order preserved.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JsonRecord {
    /// Keys in file order.
    pub keys: Vec<String>,
    /// Key → value map.
    pub values: BTreeMap<String, JsonValue>,
}

impl JsonRecord {
    /// Numeric field accessor.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.values.get(key).and_then(JsonValue::as_f64)
    }

    /// String field accessor.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.values.get(key).and_then(JsonValue::as_str)
    }
}

/// Parses a flat JSON object (`{"k": scalar, ...}`).
///
/// # Errors
///
/// Returns a message describing the first syntax problem, including nested
/// arrays/objects (the result schema is flat by design).
pub fn parse_flat_json(text: &str) -> Result<JsonRecord, String> {
    let mut chars = text.chars().peekable();
    let mut record = JsonRecord::default();

    fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars>) {
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
    }
    fn expect(chars: &mut std::iter::Peekable<std::str::Chars>, want: char) -> Result<(), String> {
        skip_ws(chars);
        match chars.next() {
            Some(c) if c == want => Ok(()),
            other => Err(format!("expected {want:?}, found {other:?}")),
        }
    }
    fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Result<String, String> {
        expect(chars, '"')?;
        let mut s = String::new();
        loop {
            match chars.next() {
                Some('"') => return Ok(s),
                Some('\\') => match chars.next() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    other => return Err(format!("unsupported escape {other:?}")),
                },
                Some(c) => s.push(c),
                None => return Err("unterminated string".into()),
            }
        }
    }

    expect(&mut chars, '{')?;
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return Ok(record);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        expect(&mut chars, ':')?;
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => JsonValue::Str(parse_string(&mut chars)?),
            Some('{') | Some('[') => {
                return Err(format!("key {key:?}: nested values are not allowed"))
            }
            Some(_) => {
                let mut token = String::new();
                while matches!(chars.peek(), Some(c) if !",}".contains(*c) && !c.is_whitespace()) {
                    token.push(chars.next().expect("peeked"));
                }
                match token.as_str() {
                    "null" => JsonValue::Null,
                    "true" => JsonValue::Bool(true),
                    "false" => JsonValue::Bool(false),
                    t => JsonValue::Num(
                        t.parse()
                            .map_err(|_| format!("key {key:?}: bad number {t:?}"))?,
                    ),
                }
            }
            None => return Err("unexpected end of input".into()),
        };
        if record.values.insert(key.clone(), value).is_some() {
            return Err(format!("duplicate key {key:?}"));
        }
        record.keys.push(key);
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err("trailing content after the object".into());
    }
    Ok(record)
}

/// Outcome of gating one fresh result against its committed baseline.
#[derive(Debug, Clone)]
pub struct BaselineComparison {
    /// Scenario under comparison.
    pub scenario: String,
    /// Gating failures; empty means the gate passes.
    pub failures: Vec<String>,
    /// One-line trend summary for the CI job log.
    pub summary: String,
}

impl BaselineComparison {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Fields that must match the baseline exactly (run identity; the schema
/// version is included so a version bump always forces a deliberate
/// baseline regeneration, even when the key set happens not to change).
const IDENTITY_FIELDS: [&str; 8] = [
    "schema_version",
    "scenario",
    "algo",
    "budget",
    "engine",
    "estimator",
    "prescreen",
    "seed",
];

/// Gates a fresh result (as JSON text) against its committed baseline.
pub fn compare_results(baseline_text: &str, current_text: &str) -> BaselineComparison {
    let mut failures = Vec::new();
    let (baseline, current) = match (
        parse_flat_json(baseline_text),
        parse_flat_json(current_text),
    ) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            if let Err(e) = b {
                failures.push(format!("baseline unparsable: {e}"));
            }
            if let Err(e) = c {
                failures.push(format!("result unparsable: {e}"));
            }
            return BaselineComparison {
                scenario: "?".into(),
                failures,
                summary: "unparsable result".into(),
            };
        }
    };
    let scenario = current.str("scenario").unwrap_or("?").to_string();

    // Schema drift: key sets must be identical (order included — the writer
    // is deterministic, so an order change is also a deliberate change).
    if baseline.keys != current.keys {
        let missing: Vec<&String> = baseline
            .keys
            .iter()
            .filter(|k| !current.keys.contains(k))
            .collect();
        let extra: Vec<&String> = current
            .keys
            .iter()
            .filter(|k| !baseline.keys.contains(k))
            .collect();
        failures.push(format!(
            "schema drift: missing keys {missing:?}, new keys {extra:?} (regenerate baselines/ deliberately if intended)"
        ));
    }

    for field in IDENTITY_FIELDS {
        if baseline.values.get(field) != current.values.get(field) {
            failures.push(format!(
                "identity field {field:?} changed: baseline {:?}, current {:?}",
                baseline.values.get(field),
                current.values.get(field)
            ));
        }
    }

    let b_yield = baseline.num("best_yield").unwrap_or(f64::NAN);
    let c_yield = current.num("best_yield").unwrap_or(f64::NAN);
    let dy = c_yield - b_yield;
    // NaN (a missing/unparsable yield field) must fail the gate too.
    if dy.is_nan() || dy.abs() > YIELD_TOLERANCE {
        failures.push(format!(
            "yield deviation {:.3} exceeds the ±{YIELD_TOLERANCE} gate (baseline {b_yield:.4}, current {c_yield:.4})",
            dy
        ));
    }

    let b_sims = baseline.num("simulations").unwrap_or(f64::NAN);
    let c_sims = current.num("simulations").unwrap_or(f64::NAN);
    let sims_trend = if b_sims > 0.0 {
        format!("{:+.1}%", 100.0 * (c_sims - b_sims) / b_sims)
    } else {
        "n/a".to_string()
    };
    let summary = format!(
        "{scenario}: yield {c_yield:.4} (baseline {b_yield:.4}, {dy:+.4}) sims {c_sims:.0} (baseline {b_sims:.0}, {sims_trend}) {}",
        if failures.is_empty() { "OK" } else { "FAIL" }
    );
    BaselineComparison {
        scenario,
        failures,
        summary,
    }
}

/// Multi-seed aggregate of one (scenario, algo) campaign cell group: the
/// schema-v4 baseline record. Where a v3 baseline froze one seed's point
/// estimate — so a gate verdict could be pure seed noise — the aggregate
/// carries the cross-seed distribution (mean / median / std / CI), and the
/// CI gate compares *medians*, which one outlier seed cannot drag.
///
/// Aggregates are a pure function of the campaign's per-seed JSONL rows
/// (timing fields are excluded end to end), so a resumed campaign emits
/// byte-identical aggregate files too.
#[derive(Debug, Clone)]
pub struct AggregateResult {
    /// Registry name of the scenario.
    pub scenario: String,
    /// Algorithm label.
    pub algo: String,
    /// Budget-class label.
    pub budget: String,
    /// Engine label.
    pub engine: String,
    /// Estimator label.
    pub estimator: String,
    /// Prescreen label.
    pub prescreen: String,
    /// The seeds aggregated over, ascending.
    pub seeds: Vec<u64>,
    /// Cross-seed summary of `best_yield`.
    pub best_yield: moheco::RunSummary,
    /// Mean per-run estimator CI half-width (within-run uncertainty).
    pub ci_half_width_mean: f64,
    /// Mean `|best_yield - true_yield|` where the truth is known.
    pub true_yield_abs_error_mean: Option<f64>,
    /// Exact total simulations across the seeds (an integer sum, not a
    /// lossy `mean × runs` reconstruction).
    pub simulations_total: u64,
    /// Cross-seed summary of the simulation counts.
    pub simulations: moheco::RunSummary,
    /// Mean generation count.
    pub generations_mean: f64,
    /// Total prescreen vetoes across seeds.
    pub prescreen_skips_total: u64,
    /// Mean engine cache hit-rate across seeds.
    pub cache_hit_rate_mean: f64,
    /// Per-seed trace digests, in seed order (informational, never gated).
    pub trace_digests: Vec<String>,
}

impl AggregateResult {
    /// Renders the seeds as the stable `"1,2,3"` identity string.
    pub fn seeds_label(&self) -> String {
        self.seeds
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }

    /// 95 % confidence half-width of the cross-seed mean yield
    /// (`Z · std / √runs`), the error bar that justifies the gate tolerance.
    pub fn best_yield_ci_half_width(&self) -> f64 {
        if self.best_yield.runs == 0 {
            0.0
        } else {
            moheco_sampling::Z_95 * self.best_yield.std_dev() / (self.best_yield.runs as f64).sqrt()
        }
    }

    /// Serializes the aggregate as a flat JSON object with a stable key
    /// order (the committed-baseline format).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let mut field = |k: &str, v: String| {
            let _ = writeln!(out, "  \"{k}\": {v},");
        };
        field("schema_version", SCHEMA_VERSION.to_string());
        field("scenario", format!("\"{}\"", self.scenario));
        field("algo", format!("\"{}\"", self.algo));
        field("budget", format!("\"{}\"", self.budget));
        field("engine", format!("\"{}\"", self.engine));
        field("estimator", format!("\"{}\"", self.estimator));
        field("prescreen", format!("\"{}\"", self.prescreen));
        field("seeds", format!("\"{}\"", self.seeds_label()));
        field("runs", self.best_yield.runs.to_string());
        field("best_yield_mean", fmt_f64(self.best_yield.mean));
        field("best_yield_median", fmt_f64(self.best_yield.median));
        field("best_yield_std", fmt_f64(self.best_yield.std_dev()));
        field("best_yield_min", fmt_f64(self.best_yield.min));
        field("best_yield_max", fmt_f64(self.best_yield.max));
        field(
            "best_yield_ci_half_width",
            fmt_f64(self.best_yield_ci_half_width()),
        );
        field("ci_half_width_mean", fmt_f64(self.ci_half_width_mean));
        field(
            "true_yield_abs_error_mean",
            fmt_opt(self.true_yield_abs_error_mean),
        );
        field("simulations_total", self.simulations_total.to_string());
        field("simulations_mean", fmt_f64(self.simulations.mean));
        field("simulations_median", fmt_f64(self.simulations.median));
        field("simulations_std", fmt_f64(self.simulations.std_dev()));
        field("generations_mean", fmt_f64(self.generations_mean));
        field(
            "prescreen_skips_total",
            self.prescreen_skips_total.to_string(),
        );
        field("cache_hit_rate_mean", fmt_f64(self.cache_hit_rate_mean));
        // Last field without the trailing comma.
        let _ = write!(
            out,
            "  \"trace_digests\": \"{}\"\n}}\n",
            self.trace_digests.join(",")
        );
        out
    }

    /// The baseline file name. The default (`memetic`) algorithm keeps the
    /// historic `RESULTS_<scenario>.json` name so the committed `baselines/`
    /// layout is stable; other algorithms are qualified.
    pub fn file_name(&self) -> String {
        if self.algo == "memetic" {
            format!("RESULTS_{}.json", self.scenario)
        } else {
            format!("RESULTS_{}.{}.json", self.scenario, self.algo)
        }
    }
}

/// Groups parsed campaign rows by `(scenario, algo)` — preserving first-seen
/// order — and condenses each group into an [`AggregateResult`].
///
/// # Errors
///
/// Returns a message when a row lacks a required field.
pub fn aggregate_rows(rows: &[JsonRecord]) -> Result<Vec<AggregateResult>, String> {
    let mut order: Vec<(String, String)> = Vec::new();
    let mut groups: BTreeMap<(String, String), Vec<&JsonRecord>> = BTreeMap::new();
    for row in rows {
        let scenario = row
            .str("scenario")
            .ok_or("row without scenario")?
            .to_string();
        let algo = row.str("algo").ok_or("row without algo")?.to_string();
        let key = (scenario, algo);
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push(row);
    }

    let need = |row: &JsonRecord, key: &str| -> Result<f64, String> {
        row.num(key)
            .ok_or_else(|| format!("row without numeric {key:?}"))
    };

    let mut aggregates = Vec::with_capacity(order.len());
    for key in order {
        let mut rows = groups.remove(&key).expect("grouped above");
        // Seed order is the canonical aggregate order.
        rows.sort_by(|a, b| {
            a.num("seed")
                .partial_cmp(&b.num("seed"))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let first = rows[0];
        let mut seeds = Vec::new();
        let mut yields = Vec::new();
        let mut cis = Vec::new();
        let mut errors: Vec<f64> = Vec::new();
        let mut sims = Vec::new();
        let mut gens = Vec::new();
        let mut skips = 0u64;
        let mut hit_rates = Vec::new();
        let mut digests = Vec::new();
        for row in &rows {
            seeds.push(need(row, "seed")? as u64);
            yields.push(need(row, "best_yield")?);
            cis.push(need(row, "ci_half_width")?);
            if let Some(e) = row.num("true_yield_abs_error") {
                errors.push(e);
            }
            sims.push(need(row, "simulations")?);
            gens.push(need(row, "generations")?);
            skips += need(row, "prescreen_skips")? as u64;
            hit_rates.push(need(row, "engine_hit_rate")?);
            digests.push(row.str("trace_digest").unwrap_or("?").to_string());
        }
        let n = rows.len() as f64;
        aggregates.push(AggregateResult {
            scenario: key.0,
            algo: key.1,
            budget: first.str("budget").unwrap_or("?").to_string(),
            engine: first.str("engine").unwrap_or("?").to_string(),
            estimator: first.str("estimator").unwrap_or("?").to_string(),
            prescreen: first.str("prescreen").unwrap_or("?").to_string(),
            seeds,
            best_yield: moheco::RunSummary::of(&yields),
            ci_half_width_mean: cis.iter().sum::<f64>() / n,
            true_yield_abs_error_mean: (!errors.is_empty())
                .then(|| errors.iter().sum::<f64>() / errors.len() as f64),
            simulations_total: sims.iter().map(|&s| s as u64).sum(),
            simulations: moheco::RunSummary::of(&sims),
            generations_mean: gens.iter().sum::<f64>() / n,
            prescreen_skips_total: skips,
            cache_hit_rate_mean: hit_rates.iter().sum::<f64>() / n,
            trace_digests: digests,
        });
    }
    Ok(aggregates)
}

/// Identity fields of an aggregate baseline (the per-run `seed` is replaced
/// by the `seeds` set).
const AGGREGATE_IDENTITY_FIELDS: [&str; 8] = [
    "schema_version",
    "scenario",
    "algo",
    "budget",
    "engine",
    "estimator",
    "prescreen",
    "seeds",
];

/// Gates a fresh multi-seed aggregate (as JSON text) against its committed
/// baseline: schema drift and identity changes fail exactly like the
/// per-run gate, and the yield criterion compares the cross-seed *medians*
/// within [`YIELD_TOLERANCE`]. The one-line summary reports the measured
/// cross-seed std alongside, so the tolerance is visibly justified (or not)
/// by the actual run-to-run noise.
pub fn compare_aggregates(baseline_text: &str, current_text: &str) -> BaselineComparison {
    let mut failures = Vec::new();
    let (baseline, current) = match (
        parse_flat_json(baseline_text),
        parse_flat_json(current_text),
    ) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            if let Err(e) = b {
                failures.push(format!("baseline unparsable: {e}"));
            }
            if let Err(e) = c {
                failures.push(format!("result unparsable: {e}"));
            }
            return BaselineComparison {
                scenario: "?".into(),
                failures,
                summary: "unparsable aggregate".into(),
            };
        }
    };
    let scenario = current.str("scenario").unwrap_or("?").to_string();

    if baseline.keys != current.keys {
        let missing: Vec<&String> = baseline
            .keys
            .iter()
            .filter(|k| !current.keys.contains(k))
            .collect();
        let extra: Vec<&String> = current
            .keys
            .iter()
            .filter(|k| !baseline.keys.contains(k))
            .collect();
        failures.push(format!(
            "schema drift: missing keys {missing:?}, new keys {extra:?} (regenerate baselines/ deliberately if intended)"
        ));
    }
    for field in AGGREGATE_IDENTITY_FIELDS {
        if baseline.values.get(field) != current.values.get(field) {
            failures.push(format!(
                "identity field {field:?} changed: baseline {:?}, current {:?}",
                baseline.values.get(field),
                current.values.get(field)
            ));
        }
    }

    let b_median = baseline.num("best_yield_median").unwrap_or(f64::NAN);
    let c_median = current.num("best_yield_median").unwrap_or(f64::NAN);
    let dy = c_median - b_median;
    if dy.is_nan() || dy.abs() > YIELD_TOLERANCE {
        failures.push(format!(
            "median yield deviation {dy:.3} exceeds the ±{YIELD_TOLERANCE} gate (baseline {b_median:.4}, current {c_median:.4})"
        ));
    }

    let c_std = current.num("best_yield_std").unwrap_or(f64::NAN);
    let b_sims = baseline.num("simulations_mean").unwrap_or(f64::NAN);
    let c_sims = current.num("simulations_mean").unwrap_or(f64::NAN);
    let sims_trend = if b_sims > 0.0 {
        format!("{:+.1}%", 100.0 * (c_sims - b_sims) / b_sims)
    } else {
        "n/a".to_string()
    };
    let summary = format!(
        "{scenario}: median yield {c_median:.4} (baseline {b_median:.4}, {dy:+.4}; cross-seed std {c_std:.4}) mean sims {c_sims:.0} (baseline {b_sims:.0}, {sims_trend}) {}",
        if failures.is_empty() { "OK" } else { "FAIL" }
    );
    BaselineComparison {
        scenario,
        failures,
        summary,
    }
}

/// FNV-1a digest of a stream of `f64` values (the per-generation trace),
/// rendered as 16 hex digits.
pub fn trace_digest(values: impl IntoIterator<Item = f64>) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for byte in v.to_bits().to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> ScenarioResult {
        ScenarioResult {
            scenario: "margin_wall".into(),
            algo: "memetic".into(),
            budget: "small".into(),
            engine: "serial".into(),
            estimator: "mc".into(),
            prescreen: "off".into(),
            seed: 1,
            dimension: 4,
            statistical_dimension: 1,
            feasible: true,
            best_yield: 0.8725,
            ci_half_width: 0.0456,
            true_yield: Some(0.871),
            true_yield_abs_error: Some(0.0015),
            simulations: 1234,
            generations: 8,
            local_searches: 1,
            prescreen_skips: 0,
            trace_digest: "00ff00ff00ff00ff".into(),
            wall_time_ms: 12.5,
            engine_stats: EngineStatsSnapshot::default(),
            engine_timing: EngineTiming::default(),
            phase_breakdown: PhaseBreakdown::default(),
        }
    }

    #[test]
    fn json_roundtrip_preserves_every_field() {
        let r = sample_result();
        let json = r.to_json();
        let parsed = parse_flat_json(&json).expect("well-formed");
        assert_eq!(parsed.str("scenario"), Some("margin_wall"));
        assert_eq!(parsed.num("schema_version"), Some(SCHEMA_VERSION as f64));
        assert_eq!(parsed.num("best_yield"), Some(0.8725));
        assert_eq!(parsed.str("estimator"), Some("mc"));
        assert_eq!(parsed.num("ci_half_width"), Some(0.0456));
        assert_eq!(parsed.num("true_yield"), Some(0.871));
        assert_eq!(parsed.num("simulations"), Some(1234.0));
        assert_eq!(parsed.values.get("feasible"), Some(&JsonValue::Bool(true)));
        assert_eq!(
            parsed.values.get("engine_cache_hits"),
            Some(&JsonValue::Num(0.0))
        );
        assert_eq!(r.file_name(), "RESULTS_margin_wall.json");
    }

    #[test]
    fn none_serializes_as_null() {
        let mut r = sample_result();
        r.true_yield = None;
        r.true_yield_abs_error = None;
        let parsed = parse_flat_json(&r.to_json()).unwrap();
        assert_eq!(parsed.values.get("true_yield"), Some(&JsonValue::Null));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse_flat_json("").is_err());
        assert!(parse_flat_json("{\"a\": }").is_err());
        assert!(parse_flat_json("{\"a\": {\"b\": 1}}").is_err());
        assert!(parse_flat_json("{\"a\": 1} trailing").is_err());
        assert!(parse_flat_json("{\"a\": 1, \"a\": 2}").is_err());
        assert!(parse_flat_json("{}").unwrap().keys.is_empty());
    }

    #[test]
    fn identical_results_pass_the_gate() {
        let json = sample_result().to_json();
        let cmp = compare_results(&json, &json);
        assert!(cmp.passed(), "{:?}", cmp.failures);
        assert!(cmp.summary.contains("OK"));
        assert_eq!(cmp.scenario, "margin_wall");
    }

    #[test]
    fn small_yield_drift_passes_large_fails() {
        let baseline = sample_result();
        let mut near = baseline.clone();
        near.best_yield += 0.03;
        let cmp = compare_results(&baseline.to_json(), &near.to_json());
        assert!(cmp.passed(), "{:?}", cmp.failures);

        let mut far = baseline.clone();
        far.best_yield += 0.08;
        let cmp = compare_results(&baseline.to_json(), &far.to_json());
        assert!(!cmp.passed());
        assert!(cmp.failures[0].contains("yield deviation"));
    }

    #[test]
    fn schema_drift_fails_the_gate() {
        let baseline = sample_result().to_json();
        let current = baseline.replace("\"generations\": 8,\n", "");
        let cmp = compare_results(&baseline, &current);
        assert!(!cmp.passed());
        assert!(cmp.failures.iter().any(|f| f.contains("schema drift")));
    }

    #[test]
    fn identity_change_fails_the_gate() {
        let baseline = sample_result();
        let mut other = sample_result();
        other.seed = 2;
        let cmp = compare_results(&baseline.to_json(), &other.to_json());
        assert!(!cmp.passed());
        assert!(cmp.failures.iter().any(|f| f.contains("seed")));
        // The estimator is part of the run identity: an lhs result can never
        // silently replace an mc baseline.
        let mut lhs = sample_result();
        lhs.estimator = "lhs".into();
        let cmp = compare_results(&baseline.to_json(), &lhs.to_json());
        assert!(!cmp.passed());
        assert!(cmp.failures.iter().any(|f| f.contains("estimator")));
        // The prescreen is part of the run identity too: a prescreened
        // result can never silently replace an unscreened baseline.
        let mut rsb = sample_result();
        rsb.prescreen = "rsb".into();
        let cmp = compare_results(&baseline.to_json(), &rsb.to_json());
        assert!(!cmp.passed());
        assert!(cmp.failures.iter().any(|f| f.contains("prescreen")));
    }

    #[test]
    fn digest_is_deterministic_and_sensitive() {
        let a = trace_digest([0.1, 0.2, 0.3]);
        let b = trace_digest([0.1, 0.2, 0.3]);
        let c = trace_digest([0.1, 0.2, 0.30000001]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn jsonl_row_drops_timing_and_stays_parsable() {
        let r = sample_result();
        let row = r.to_jsonl_row();
        assert!(row.ends_with('\n'));
        assert_eq!(row.trim_end().lines().count(), 1, "one line per row");
        let parsed = parse_flat_json(row.trim_end()).expect("row parses");
        assert!(parsed.num("wall_time_ms").is_none(), "timing excluded");
        assert!(parsed.num("engine_busy_nanos").is_none(), "timing excluded");
        assert_eq!(parsed.num("best_yield"), Some(r.best_yield));
        assert_eq!(parsed.str("trace_digest"), Some("00ff00ff00ff00ff"));
    }

    #[test]
    fn phase_breakdown_appears_only_in_the_traced_pretty_file() {
        use moheco_obs::SpanEvent;
        let mut r = sample_result();
        // Untraced run: no phase field anywhere.
        assert!(!r.to_json().contains("phase_breakdown"));
        r.phase_breakdown = PhaseBreakdown::from_span_events([SpanEvent {
            seq: 0,
            path: "run".into(),
            depth: 0,
            simulations: 1234,
            cache_hits: 0,
            evictions: 0,
            wall_nanos: 10,
        }]);
        let pretty = parse_flat_json(&r.to_json()).expect("pretty parses");
        assert_eq!(pretty.str("phase_breakdown"), Some("run=1:1234:0:0"));
        // Timing-adjacent data never reaches the deterministic JSONL row.
        let row = parse_flat_json(r.to_jsonl_row().trim_end()).expect("row parses");
        assert!(row.str("phase_breakdown").is_none());
    }

    fn sample_rows() -> Vec<JsonRecord> {
        [(1u64, 0.90, 1000u64), (2, 0.80, 1200), (3, 0.95, 1100)]
            .into_iter()
            .map(|(seed, best_yield, simulations)| {
                let mut r = sample_result();
                r.seed = seed;
                r.best_yield = best_yield;
                r.simulations = simulations;
                parse_flat_json(r.to_jsonl_row().trim_end()).expect("row parses")
            })
            .collect()
    }

    #[test]
    fn aggregate_rows_computes_cross_seed_statistics() {
        let aggs = aggregate_rows(&sample_rows()).expect("aggregates");
        assert_eq!(aggs.len(), 1);
        let a = &aggs[0];
        assert_eq!(a.scenario, "margin_wall");
        assert_eq!(a.seeds, vec![1, 2, 3]);
        assert_eq!(a.seeds_label(), "1,2,3");
        assert_eq!(a.best_yield.median, 0.90);
        assert!((a.best_yield.mean - 0.8833333333333333).abs() < 1e-12);
        assert_eq!(a.simulations.median, 1100.0);
        assert_eq!(a.simulations_total, 3300, "exact integer sum");
        assert!(a.best_yield_ci_half_width() > 0.0);
        assert_eq!(a.trace_digests.len(), 3);
        assert_eq!(a.file_name(), "RESULTS_margin_wall.json");
        // Non-default algorithms get a qualified file name.
        let mut other = a.clone();
        other.algo = "de".into();
        assert_eq!(other.file_name(), "RESULTS_margin_wall.de.json");
        // The serialized aggregate round-trips through the flat parser.
        let parsed = parse_flat_json(&a.to_json()).expect("aggregate parses");
        assert_eq!(parsed.num("best_yield_median"), Some(0.90));
        assert_eq!(parsed.str("seeds"), Some("1,2,3"));
        assert_eq!(parsed.num("runs"), Some(3.0));
    }

    #[test]
    fn aggregate_gate_compares_medians_within_tolerance() {
        let baseline = aggregate_rows(&sample_rows()).unwrap().remove(0);
        // Small median drift passes; the mean may move freely.
        let mut near = baseline.clone();
        near.best_yield.median += 0.03;
        near.best_yield.mean += 0.2;
        let cmp = compare_aggregates(&baseline.to_json(), &near.to_json());
        assert!(cmp.passed(), "{:?}", cmp.failures);
        assert!(cmp.summary.contains("cross-seed std"));
        // A large median drift fails.
        let mut far = baseline.clone();
        far.best_yield.median += 0.08;
        let cmp = compare_aggregates(&baseline.to_json(), &far.to_json());
        assert!(!cmp.passed());
        assert!(cmp.failures[0].contains("median yield deviation"));
        // The seed set is part of the identity: a 2-seed aggregate can never
        // silently replace a 3-seed baseline.
        let mut fewer = baseline.clone();
        fewer.seeds = vec![1, 2];
        let cmp = compare_aggregates(&baseline.to_json(), &fewer.to_json());
        assert!(!cmp.passed());
        assert!(cmp.failures.iter().any(|f| f.contains("seeds")));
    }
}
