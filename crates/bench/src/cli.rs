//! Shared command-line parsing for every experiment binary.
//!
//! Historically each binary in `src/bin/` re-scanned `std::env::args()` for
//! its flags; this module is the single parser they all route through now.
//! It understands boolean flags (`--paper`, `--parallel`) and valued flags
//! (`--seed 7`, `--scenario all`), validates that every argument is a flag
//! the caller declared, and exposes the two derived settings
//! ([`EngineKind`], [`ExperimentScale`]) the per-figure binaries share.

use crate::{EngineKind, ExperimentScale};

/// Parsed command-line arguments.
#[derive(Debug, Clone)]
pub struct CliArgs {
    args: Vec<String>,
}

impl CliArgs {
    /// Parses the process command line (skipping the binary name).
    pub fn parse() -> Self {
        Self::from_vec(std::env::args().skip(1).collect())
    }

    /// Builds from an explicit argument vector (tests).
    pub fn from_vec(args: Vec<String>) -> Self {
        Self { args }
    }

    /// Returns `true` when the boolean flag is present.
    pub fn has(&self, flag: &str) -> bool {
        self.args.iter().any(|a| a == flag)
    }

    /// The value following a valued flag, if the flag is present.
    ///
    /// # Errors
    ///
    /// Returns an error when the flag is present but the value is missing.
    pub fn value_of(&self, flag: &str) -> Result<Option<&str>, String> {
        match self.args.iter().position(|a| a == flag) {
            None => Ok(None),
            Some(i) => match self.args.get(i + 1) {
                Some(v) if !v.starts_with("--") => Ok(Some(v)),
                _ => Err(format!("flag {flag} requires a value")),
            },
        }
    }

    /// Parses the value of a numeric flag, with a default when absent.
    pub fn u64_of(&self, flag: &str, default: u64) -> Result<u64, String> {
        match self.value_of(flag)? {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag {flag}: expected an integer, got {v:?}")),
        }
    }

    /// Validates that every argument is either one of `boolean_flags`, one
    /// of `valued_flags`, or the value of a valued flag.
    ///
    /// # Errors
    ///
    /// Returns the first unrecognized argument.
    pub fn expect_only(&self, boolean_flags: &[&str], valued_flags: &[&str]) -> Result<(), String> {
        let mut skip_value = false;
        for a in &self.args {
            if skip_value {
                skip_value = false;
                continue;
            }
            if boolean_flags.contains(&a.as_str()) {
                continue;
            }
            if valued_flags.contains(&a.as_str()) {
                skip_value = true;
                continue;
            }
            return Err(format!("unrecognized argument {a:?}"));
        }
        Ok(())
    }

    /// The engine selection shared by all binaries (`--parallel`).
    pub fn engine_kind(&self) -> EngineKind {
        if self.has("--parallel") {
            EngineKind::Parallel
        } else {
            EngineKind::Serial
        }
    }

    /// The experiment scale shared by the per-figure binaries (`--paper`
    /// selects the paper-scale settings, `--parallel` the parallel engine).
    pub fn scale(&self) -> ExperimentScale {
        let mut scale = if self.has("--paper") {
            ExperimentScale::paper()
        } else {
            ExperimentScale::fast()
        };
        scale.engine = self.engine_kind();
        scale
    }
}

/// Parses and validates the figure-binary command line (`--paper`,
/// `--parallel` only), exiting with a usage message on anything else.
pub fn figure_binary_scale() -> ExperimentScale {
    let args = CliArgs::parse();
    if let Err(e) = args.expect_only(&["--paper", "--parallel"], &[]) {
        eprintln!("error: {e}");
        eprintln!("usage: [--paper] [--parallel]");
        std::process::exit(2);
    }
    args.scale()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> CliArgs {
        CliArgs::from_vec(list.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn boolean_and_valued_flags() {
        let a = args(&["--paper", "--seed", "7", "--scenario", "all"]);
        assert!(a.has("--paper"));
        assert!(!a.has("--parallel"));
        assert_eq!(a.value_of("--seed").unwrap(), Some("7"));
        assert_eq!(a.u64_of("--seed", 1).unwrap(), 7);
        assert_eq!(a.u64_of("--budget-n", 42).unwrap(), 42);
        assert_eq!(a.value_of("--scenario").unwrap(), Some("all"));
    }

    #[test]
    fn missing_value_is_an_error() {
        let a = args(&["--seed"]);
        assert!(a.value_of("--seed").is_err());
        let b = args(&["--seed", "--paper"]);
        assert!(b.value_of("--seed").is_err());
        assert!(args(&["--seed", "x"]).u64_of("--seed", 1).is_err());
    }

    #[test]
    fn unknown_arguments_are_rejected() {
        let a = args(&["--paper", "--bogus"]);
        assert!(a.expect_only(&["--paper"], &[]).is_err());
        let b = args(&["--seed", "7", "--parallel"]);
        assert!(b.expect_only(&["--parallel"], &["--seed"]).is_ok());
    }

    #[test]
    fn derived_settings() {
        assert_eq!(args(&["--parallel"]).engine_kind(), EngineKind::Parallel);
        assert_eq!(args(&[]).engine_kind(), EngineKind::Serial);
        let s = args(&["--paper", "--parallel"]).scale();
        assert_eq!(s.runs, ExperimentScale::paper().runs);
        assert_eq!(s.engine, EngineKind::Parallel);
        assert_eq!(args(&[]).scale().runs, ExperimentScale::fast().runs);
    }
}
