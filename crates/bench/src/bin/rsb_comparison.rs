//! Reproduces the §3.4 response-surface comparison of the MOHECO paper.
//!
//! A MOHECO run on example 1 produces `(design point, yield)` data; at each
//! generation a 20-neuron neural network is trained (Levenberg–Marquardt) on
//! the data of all previous generations and used to predict the yields of the
//! current generation. The paper reports that the RMS error remains ≈6.9 %
//! even with 50 generations of training data — too inaccurate for a surrogate
//! to replace Monte Carlo in the loop.
//!
//! Run with `--paper` for paper-scale settings.

use moheco_analog::FoldedCascode;
use moheco_bench::run_single_with_engine;
use moheco_surrogate::{LmConfig, RsbYieldModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = moheco_bench::cli::figure_binary_scale();
    eprintln!("running MOHECO on example 1 to collect trajectory data ...");
    let (result, _problem) =
        run_single_with_engine(FoldedCascode::new(), scale.config, 0x35B4, scale.engine);
    let trace = &result.trace;
    println!(
        "MOHECO converged to a reported yield of {:.1}% in {} generations ({} simulations)",
        100.0 * result.reported_yield,
        result.generations,
        result.total_simulations
    );

    println!(
        "\nSection 3.4: NN (20 hidden neurons, Levenberg-Marquardt) trained on generations 0..g,"
    );
    println!("tested on the candidates of generation g+1.");
    println!(
        "{:>12} {:>16} {:>16}",
        "generation", "training points", "RMS error (pp)"
    );

    let mut rng = StdRng::seed_from_u64(0x2024);
    let lm = LmConfig {
        max_iterations: 40,
        ..LmConfig::default()
    };
    let mut errors = Vec::new();
    let last = trace.len().saturating_sub(1);
    for g in 1..=last {
        let train = trace.training_pairs(g - 1);
        let test = trace.generation_pairs(g);
        if train.len() < 10 || test.is_empty() {
            continue;
        }
        let Ok(model) = RsbYieldModel::fit(&train, 20, &lm, &mut rng) else {
            continue;
        };
        let rms = model.rms_error(&test) * 100.0;
        errors.push(rms);
        println!("{:>12} {:>16} {:>15.2}%", g, train.len(), rms);
    }
    if let Some(last_err) = errors.last() {
        println!(
            "\nRMS error with all available training data: {last_err:.2} percentage points (paper: 6.86%)"
        );
        println!("Conclusion (as in the paper): the surrogate's error remains far larger than the");
        println!("0.3-0.5 pp accuracy MOHECO achieves for the same simulation budget.");
    } else {
        println!("\nNot enough trajectory data to train the surrogate; rerun with --paper.");
    }
}
