//! Reproduces Fig. 3 of the MOHECO paper: how the ordinal-optimization budget
//! allocation distributes Monte-Carlo samples over one typical population of
//! example 1.
//!
//! The paper reports that candidates with yield > 70 % (36 % of the
//! population) receive 55 % of the simulations, candidates with yield < 40 %
//! (30 % of the population) receive 13 %, and the total is ~11 % of the
//! budget the `AS + LHS` flow with a fixed 500-sample budget would spend.
//!
//! Run with `--paper` for the paper-scale population (50 candidates,
//! `sim_ave = 35`, fixed budget 500).

use moheco::{estimate_fixed_budget, estimate_two_stage, Candidate, MohecoConfig, YieldProblem};
use moheco_analog::{FoldedCascode, Testbench};
use moheco_optim::problem::random_point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn screen(problem: &YieldProblem<moheco::CircuitBench<FoldedCascode>>, x: Vec<f64>) -> Candidate {
    let rep = problem.feasibility(&x);
    if rep.is_feasible() {
        Candidate::feasible(x, rep.decision)
    } else {
        Candidate::infeasible(x, rep.violation)
    }
}

fn main() {
    let scale = moheco_bench::cli::figure_binary_scale();
    let config = MohecoConfig {
        stage2_threshold: 1.1, // keep everything in stage 1 for this figure
        ..scale.config
    };
    let fixed_budget = scale.fixed_budgets()[1];
    let problem =
        YieldProblem::with_engine(FoldedCascode::new(), scale.engine.build_seeded(0xF163));
    let mut rng = StdRng::seed_from_u64(0xF163);
    let bounds = problem.bounds();
    let reference = problem.testbench().reference_design();

    // Build a "typical population": a mix of perturbed good designs and
    // random designs, mimicking a mid-run DE population.
    let mut candidates: Vec<Candidate> = Vec::new();
    for i in 0..config.population_size {
        let x: Vec<f64> = if i % 4 != 3 {
            // Perturbation of the reference design (mostly feasible, with a
            // wide spread of yields under the strengthened process variation).
            reference
                .iter()
                .zip(&bounds)
                .map(|(&v, &(lo, hi))| {
                    let span = hi - lo;
                    (v + span * 0.12 * (rng.gen::<f64>() - 0.5)).clamp(lo, hi)
                })
                .collect()
        } else {
            random_point(&bounds, &mut rng)
        };
        candidates.push(screen(&problem, x));
    }

    let before = problem.simulations();
    let record = estimate_two_stage(&problem, &mut candidates, &config);
    let oo_sims = problem.simulations() - before;

    // Bin the feasible candidates by estimated yield.
    let bins = [
        (0.7, f64::INFINITY, "> 70%"),
        (0.4, 0.7, "40% - 70%"),
        (-1.0, 0.4, "< 40%"),
    ];
    let population = candidates.len() as f64;
    let total_samples: usize = record.samples.iter().sum();
    println!("Fig. 3: OO budget allocation over one typical population (example 1)");
    println!(
        "{:<12} {:>18} {:>18}",
        "yield bin", "% of population", "% of simulations"
    );
    for (lo, hi, label) in bins {
        let mut members = 0usize;
        let mut samples = 0usize;
        for (c, &s) in candidates.iter().zip(&record.samples) {
            let y = c.yield_value();
            if c.feasible && y >= lo && y < hi {
                members += 1;
                samples += s;
            }
        }
        println!(
            "{:<12} {:>17.1}% {:>17.1}%",
            label,
            100.0 * members as f64 / population,
            100.0 * samples as f64 / total_samples.max(1) as f64
        );
    }
    let infeasible = candidates.iter().filter(|c| !c.feasible).count();
    println!(
        "(infeasible: {:.1}% of the population, 0% of the simulations)",
        100.0 * infeasible as f64 / population
    );

    // Compare against the fixed-budget flow on the same population. A fresh
    // problem (fresh engine cache) keeps the comparison honest: the
    // fixed-budget flow must not be served from the OO run's sample cache.
    let problem_fixed =
        YieldProblem::with_engine(FoldedCascode::new(), scale.engine.build_seeded(0xF163));
    let mut fixed_candidates: Vec<Candidate> = candidates
        .iter()
        .map(|c| {
            if c.feasible {
                Candidate::feasible(c.x.clone(), c.decision)
            } else {
                Candidate::infeasible(c.x.clone(), c.violation)
            }
        })
        .collect();
    let before = problem_fixed.simulations();
    let _ = estimate_fixed_budget(&problem_fixed, &mut fixed_candidates, fixed_budget);
    let fixed_sims = problem_fixed.simulations() - before;
    println!(
        "\nOO population budget: {oo_sims} simulations = {:.1}% of the AS+LHS-{fixed_budget} budget ({fixed_sims}) (paper: ~11%)",
        100.0 * oo_sims as f64 / fixed_sims.max(1) as f64
    );
}
