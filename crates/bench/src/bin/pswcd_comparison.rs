//! Reproduces the §3.4 PSWCD (performance-specific worst-case design)
//! over-design discussion of the MOHECO paper.
//!
//! For a set of designs of example 1, the binary reports the Monte-Carlo
//! yield next to the PSWCD accept/reject decision obtained by checking every
//! specification at its own worst-case process point. Designs with high MC
//! yield that PSWCD rejects illustrate the over-design the paper describes.

use moheco_analog::{FoldedCascode, Testbench};
use moheco_surrogate::{overdesign_comparison, PswcdConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = moheco_bench::cli::figure_binary_scale();
    let tb = FoldedCascode::new();
    let mc_samples = if scale.reference_samples >= 50_000 {
        2_000
    } else {
        400
    };
    let config = PswcdConfig {
        k_sigma: 3.0,
        probes: if scale.reference_samples >= 50_000 {
            200
        } else {
            60
        },
    };

    // Designs of decreasing robustness: the reference sizing, a power-tight
    // variant and a starved variant.
    let reference = tb.reference_design();
    let mut tight = reference.clone();
    tight[8] = 168.0;
    let mut generous = reference.clone();
    generous[8] = 140.0;
    generous[4] = 100.0;
    let designs = [
        ("reference sizing", reference),
        ("power-tight sizing", tight),
        ("relaxed sizing", generous),
    ];

    println!("Section 3.4: PSWCD accept/reject vs Monte-Carlo yield (example 1)");
    println!(
        "{:<22} {:>14} {:>18}",
        "design", "MC yield", "PSWCD decision"
    );
    let mut rng = StdRng::seed_from_u64(0x95CD);
    for (label, x) in designs {
        let (accepted, mc_yield) = overdesign_comparison(&tb, &x, mc_samples, &config, &mut rng);
        println!(
            "{:<22} {:>13.1}% {:>18}",
            label,
            100.0 * mc_yield,
            if accepted {
                "accept"
            } else {
                "reject (over-design)"
            }
        );
    }
    println!("\nA rejection of a design whose MC yield is high demonstrates the over-design of");
    println!("spec-wise worst-case methods: the per-spec worst-case process points cannot occur");
    println!("simultaneously, so their combination is overly pessimistic (paper, section 3.4).");
}
