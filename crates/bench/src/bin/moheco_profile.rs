//! `moheco-profile` — renders the obs event stream of a traced run.
//!
//! ```text
//! moheco-profile --input FILE [--check]
//! ```
//!
//! `FILE` is a JSONL stream written by `moheco-run --obs jsonl:FILE` (or any
//! `JsonlCollector`): one flat JSON object per span exit plus one
//! `run_summary` record per completed scenario. The binary rebuilds the
//! [`PhaseBreakdown`] from the raw span events and prints a self-time table
//! (sorted by self simulations) followed by a text flamegraph over
//! *inclusive* simulations.
//!
//! With `--check` it also reconciles the stream against the engine counters:
//! the per-phase self simulations must sum exactly to the `simulations_run`
//! total reported by the `run_summary` records (and likewise cache hits).
//! Any mismatch means a code path ran simulations outside every span — the
//! attribution invariant the workspace tests enforce — and exits non-zero,
//! which is how CI gates the profiled smoke run.

use moheco_bench::results::parse_flat_json;
use moheco_bench::CliArgs;
use moheco_obs::{PhaseBreakdown, SpanEvent};
use std::process::ExitCode;

const USAGE: &str = "usage: moheco-profile --input FILE [--check]";

fn fail(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// Engine-counter totals accumulated from `run_summary` records.
#[derive(Default)]
struct SummaryTotals {
    runs: u64,
    simulations_run: u64,
    cache_hits: u64,
}

fn main() -> ExitCode {
    let args = CliArgs::parse();
    if let Err(e) = args.expect_only(&["--check"], &["--input"]) {
        return fail(&e);
    }
    let input = match args.value_of("--input") {
        Err(e) => return fail(&e),
        Ok(Some(p)) => p.to_string(),
        Ok(None) => return fail("--input FILE is required"),
    };
    let text = match std::fs::read_to_string(&input) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {input:?}: {e}")),
    };

    let mut spans: Vec<SpanEvent> = Vec::new();
    let mut totals = SummaryTotals::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = match parse_flat_json(line) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {input}:{}: {e}", lineno + 1);
                return ExitCode::FAILURE;
            }
        };
        let u64_field = |key: &str| record.num(key).unwrap_or(0.0) as u64;
        match record.str("event") {
            Some("span") => spans.push(SpanEvent {
                seq: u64_field("seq"),
                path: record.str("path").unwrap_or("?").to_string(),
                depth: u64_field("depth") as u32,
                simulations: u64_field("simulations"),
                cache_hits: u64_field("cache_hits"),
                evictions: u64_field("evictions"),
                wall_nanos: u64_field("wall_nanos"),
            }),
            Some("run_summary") => {
                totals.runs += 1;
                totals.simulations_run += u64_field("simulations_run");
                totals.cache_hits += u64_field("cache_hits");
                println!(
                    "run: scenario {} algo {} budget {} seed {} yield {} sims {} hits {}",
                    record.str("scenario").unwrap_or("?"),
                    record.str("algo").unwrap_or("?"),
                    record.str("budget").unwrap_or("?"),
                    u64_field("seed"),
                    record.num("best_yield").unwrap_or(f64::NAN),
                    u64_field("simulations_run"),
                    u64_field("cache_hits"),
                );
            }
            // Other event kinds (campaign progress, future additions) are
            // valid stream content the profiler has no use for.
            _ => {}
        }
    }
    if spans.is_empty() {
        eprintln!("error: no span events in {input}");
        return ExitCode::FAILURE;
    }

    let breakdown = PhaseBreakdown::from_span_events(spans);
    println!("\nself-time table ({} phases):", breakdown.phases.len());
    print!("{}", breakdown.render_table());
    println!("\nflamegraph (inclusive simulations):");
    print!("{}", breakdown.render_flamegraph());
    println!("\nbreakdown digest: {}", breakdown.digest());

    if args.has("--check") {
        if totals.runs == 0 {
            eprintln!("check: FAIL — no run_summary records to reconcile against");
            return ExitCode::FAILURE;
        }
        let mut mismatches = Vec::new();
        if breakdown.total_simulations() != totals.simulations_run {
            mismatches.push(format!(
                "per-phase simulations sum to {} but the engine ran {}",
                breakdown.total_simulations(),
                totals.simulations_run
            ));
        }
        if breakdown.total_cache_hits() != totals.cache_hits {
            mismatches.push(format!(
                "per-phase cache hits sum to {} but the engine served {}",
                breakdown.total_cache_hits(),
                totals.cache_hits
            ));
        }
        if !mismatches.is_empty() {
            for m in &mismatches {
                eprintln!("check: FAIL — {m}");
            }
            return ExitCode::FAILURE;
        }
        println!(
            "check: OK — {} phase(s) reconcile with {} run(s): {} simulations, {} cache hits",
            breakdown.phases.len(),
            totals.runs,
            totals.simulations_run,
            totals.cache_hits
        );
    }
    ExitCode::SUCCESS
}
