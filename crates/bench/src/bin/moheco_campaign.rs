//! `moheco-campaign` — multi-seed campaign runner over the scenario
//! registry, the schema-v4 aggregate-gating entry point.
//!
//! ```text
//! moheco-campaign [--scenario <name>|all] [--algo de|ga|memetic|two-stage]
//!                 [--budget tiny|small|paper] [--estimator mc|lhs|antithetic|is]
//!                 [--prescreen off|rsb] [--seeds N] [--parallel]
//!                 [--schedule fixed|ocba|ocba-shrink]
//!                 [--engine-reuse reset|shared-cache] [--max-cached-blocks N]
//!                 [--jsonl FILE] [--out-dir DIR] [--baseline-dir DIR]
//!                 [--obs off|jsonl:FILE] [--metrics-out FILE]
//! ```
//!
//! The scenario × algorithm × seed grid runs as one long-lived process with
//! one engine per scenario. Each completed cell streams one deterministic
//! JSONL row to `--jsonl` (default `<out-dir>/CAMPAIGN.jsonl`); a killed
//! campaign restarted with the same arguments skips the rows already on
//! disk and finishes with byte-identical output. Per-(scenario, algo)
//! aggregates (mean/median/std/CI over the seeds) are written to
//! `RESULTS_<scenario>.json` in `--out-dir`, and with `--baseline-dir` each
//! aggregate is gated against the committed baseline on the cross-seed
//! *median* yield — the single-seed gate this replaces could pass or fail on
//! seed noise alone.
//!
//! After the grid completes, the per-cell cost summary (simulations, wall
//! time, cache efficiency of every cell executed in this invocation) goes to
//! stderr. With `--obs jsonl:FILE` the cells run under a span tracer whose
//! event stream — span exits, one `run_summary` and one live `campaign_cell`
//! record per cell — lands in `FILE` (readable by `moheco-profile`); with
//! `--metrics-out FILE` the campaign's final engine counters and phase
//! attribution are written to `FILE` in the Prometheus text exposition
//! format. Tracing never touches the search RNG, so rows and aggregates are
//! bit-identical with observability on or off.

use moheco::PrescreenKind;
use moheco_bench::campaign::run_campaign_traced;
use moheco_bench::results::compare_aggregates;
use moheco_bench::{Algo, BudgetClass, CliArgs, EngineReuse, JobSpec, ScheduleKind};
use moheco_obs::{JsonlCollector, Tracer};
use moheco_runtime::{render_pool_cache, render_prometheus};
use moheco_sampling::EstimatorKind;
use moheco_scenarios::{all_scenarios, find_scenario, Scenario};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "usage: moheco-campaign [--scenario <name>|all] \
[--algo de|ga|memetic|two-stage] [--budget tiny|small|paper] \
[--estimator mc|lhs|antithetic|is] [--prescreen off|rsb] [--seeds N] \
[--parallel] [--schedule fixed|ocba|ocba-shrink] \
[--engine-reuse reset|shared-cache] [--max-cached-blocks N] \
[--jsonl FILE] [--out-dir DIR] [--baseline-dir DIR] [--obs off|jsonl:FILE] \
[--metrics-out FILE]";

fn fail(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args = CliArgs::parse();
    if let Err(e) = args.expect_only(
        &["--parallel"],
        &[
            "--scenario",
            "--algo",
            "--budget",
            "--estimator",
            "--prescreen",
            "--seeds",
            "--schedule",
            "--engine-reuse",
            "--max-cached-blocks",
            "--jsonl",
            "--out-dir",
            "--baseline-dir",
            "--obs",
            "--metrics-out",
        ],
    ) {
        return fail(&e);
    }

    let scenarios: Vec<Arc<dyn Scenario>> = match args.value_of("--scenario") {
        Err(e) => return fail(&e),
        Ok(None) | Ok(Some("all")) => all_scenarios(),
        Ok(Some(name)) => match find_scenario(name) {
            Some(s) => vec![s],
            None => {
                let names = moheco_scenarios::scenario_names().join(", ");
                return fail(&format!("unknown scenario {name:?}; registered: {names}"));
            }
        },
    };
    let algo = match args.value_of("--algo") {
        Err(e) => return fail(&e),
        Ok(None) => Algo::default(),
        Ok(Some(v)) => match Algo::parse(v) {
            Some(a) => a,
            None => return fail(&format!("unknown algo {v:?}")),
        },
    };
    let budget = match args.value_of("--budget") {
        Err(e) => return fail(&e),
        Ok(None) => BudgetClass::default(),
        Ok(Some(v)) => match BudgetClass::parse(v) {
            Some(b) => b,
            None => return fail(&format!("unknown budget {v:?}")),
        },
    };
    let estimator = match args.value_of("--estimator") {
        Err(e) => return fail(&e),
        Ok(None) => EstimatorKind::default(),
        Ok(Some(v)) => match EstimatorKind::parse(v) {
            Some(k) => k,
            None => return fail(&format!("unknown estimator {v:?}")),
        },
    };
    let prescreen = match args.value_of("--prescreen") {
        Err(e) => return fail(&e),
        Ok(None) => PrescreenKind::default(),
        Ok(Some(v)) => match PrescreenKind::parse(v) {
            Some(k) => k,
            None => return fail(&format!("unknown prescreen {v:?}; expected off or rsb")),
        },
    };
    let seeds = match args.u64_of("--seeds", 3) {
        Ok(s) if s >= 1 => (1..=s).collect::<Vec<u64>>(),
        Ok(_) => return fail("--seeds must be >= 1"),
        Err(e) => return fail(&e),
    };
    let schedule = match args.value_of("--schedule") {
        Err(e) => return fail(&e),
        Ok(None) => ScheduleKind::default(),
        Ok(Some(v)) => match ScheduleKind::parse(v) {
            Some(k) => k,
            None => {
                return fail(&format!(
                    "unknown schedule {v:?}; expected fixed, ocba or ocba-shrink"
                ))
            }
        },
    };
    let reuse = match args.value_of("--engine-reuse") {
        Err(e) => return fail(&e),
        Ok(None) => EngineReuse::default(),
        Ok(Some(v)) => match EngineReuse::parse(v) {
            Some(r) => r,
            None => return fail(&format!("unknown engine-reuse {v:?}")),
        },
    };
    let max_cached_blocks = match args.u64_of("--max-cached-blocks", 0) {
        Ok(v) => v as usize,
        Err(e) => return fail(&e),
    };
    let out_dir = match args.value_of("--out-dir") {
        Err(e) => return fail(&e),
        Ok(v) => v.unwrap_or(".").to_string(),
    };
    let jsonl: PathBuf = match args.value_of("--jsonl") {
        Err(e) => return fail(&e),
        Ok(Some(p)) => PathBuf::from(p),
        Ok(None) => Path::new(&out_dir).join("CAMPAIGN.jsonl"),
    };
    let baseline_dir = match args.value_of("--baseline-dir") {
        Err(e) => return fail(&e),
        Ok(v) => v.map(str::to_string),
    };
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        return fail(&format!("cannot create out dir {out_dir:?}: {e}"));
    }
    let metrics_out = match args.value_of("--metrics-out") {
        Err(e) => return fail(&e),
        Ok(v) => v.map(str::to_string),
    };
    let obs = match args.value_of("--obs") {
        Err(e) => return fail(&e),
        Ok(v) => v.unwrap_or("off").to_string(),
    };
    let tracer = if let Some(path) = obs.strip_prefix("jsonl:") {
        match JsonlCollector::create(Path::new(path)) {
            Ok(c) => Tracer::new(Arc::new(c)),
            Err(e) => return fail(&format!("cannot create obs stream {path:?}: {e}")),
        }
    } else if obs != "off" {
        return fail(&format!(
            "unknown obs mode {obs:?}; expected off or jsonl:FILE"
        ));
    } else if metrics_out.is_some() {
        // Phase attribution without an event stream: the Prometheus snapshot
        // needs the aggregated breakdown only.
        Tracer::aggregating()
    } else {
        Tracer::disabled()
    };

    let spec = JobSpec {
        scenarios: scenarios.iter().map(|s| s.name().to_string()).collect(),
        algos: vec![algo],
        budget,
        seeds,
        engine: args.engine_kind(),
        estimator,
        prescreen,
        reuse,
        max_cached_blocks,
        schedule,
    };
    eprintln!(
        "moheco-campaign: {} cell(s) ({} scenario(s) x {} x {} seed(s)), budget {}, estimator {}, prescreen {}, {} engine, reuse {}, schedule {}{}",
        spec.cells(),
        spec.scenarios.len(),
        algo.label(),
        spec.seeds.len(),
        budget.label(),
        estimator.label(),
        prescreen.label(),
        spec.engine.label(),
        reuse.label(),
        schedule.label(),
        if max_cached_blocks > 0 {
            format!(", cache bound {max_cached_blocks} blocks")
        } else {
            String::new()
        },
    );

    let report = match run_campaign_traced(&spec, &jsonl, &tracer, |line| eprintln!("  {line}")) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    tracer.flush();
    eprintln!(
        "moheco-campaign: {} executed, {} resumed from {}",
        report.executed,
        report.resumed,
        jsonl.display()
    );
    eprintln!(
        "schedule {}: {} round(s), {} cell(s) scheduled, {} group(s) stopped early, {} seed(s) saved of {}, {} budget escalation(s), {} simulation(s) spent",
        report.schedule.label,
        report.schedule.rounds,
        report.schedule.scheduled,
        report.schedule.groups_gated,
        report.schedule.seeds_saved,
        spec.cells(),
        report.schedule.escalations,
        report.schedule.simulations_total,
    );

    // Final per-cell cost summary: what this invocation actually spent.
    if report.cell_costs.is_empty() {
        eprintln!("cell costs: none (every cell resumed from disk)");
    } else {
        eprintln!("cell costs ({} executed):", report.cell_costs.len());
        let mut wall_total = 0.0;
        for c in &report.cell_costs {
            wall_total += c.wall_time_ms;
            eprintln!(
                "  {}/{}/seed {}: {} sims, {:.0} ms, cache {:.1}% ({} hits)",
                c.scenario,
                c.algo,
                c.seed,
                c.engine_stats.simulations_run,
                c.wall_time_ms,
                100.0 * c.engine_stats.hit_rate(),
                c.engine_stats.cache_hits,
            );
        }
        let total = report.total_engine_stats();
        eprintln!(
            "  total: {} sims, {:.0} ms, cache {:.1}% ({} hits)",
            total.simulations_run,
            wall_total,
            100.0 * total.hit_rate(),
            total.cache_hits,
        );
    }

    if let Some(path) = &metrics_out {
        let mut text = render_prometheus(&report.total_engine_stats(), &tracer.breakdown());
        text.push_str(&render_pool_cache(&report.engine_cache));
        report.schedule.render_prometheus(&mut text);
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("metrics snapshot -> {path}");
    }

    let mut failures: Vec<String> = Vec::new();
    for agg in &report.aggregates {
        let json = agg.to_json();
        let path = Path::new(&out_dir).join(agg.file_name());
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        match &baseline_dir {
            None => {
                println!(
                    "{}/{}: yield median {:.4} mean {:.4} ±{:.4} (CI ±{:.4}) sims mean {:.0} over seeds {} -> {}",
                    agg.scenario,
                    agg.algo,
                    agg.best_yield.median,
                    agg.best_yield.mean,
                    agg.best_yield.std_dev(),
                    agg.best_yield_ci_half_width(),
                    agg.simulations.mean,
                    agg.seeds_label(),
                    path.display()
                );
            }
            Some(dir) => {
                let baseline_path = Path::new(dir).join(agg.file_name());
                match std::fs::read_to_string(&baseline_path) {
                    Err(e) => {
                        // The hint must carry every identity flag of this
                        // invocation — a regenerated baseline with a
                        // different estimator/prescreen/engine would fail
                        // the identity gate forever.
                        let mut hint = format!(
                            "moheco-campaign --scenario {} --algo {} --budget {} --seeds {}",
                            agg.scenario,
                            agg.algo,
                            budget.label(),
                            agg.seeds.len(),
                        );
                        if estimator != EstimatorKind::default() {
                            hint.push_str(&format!(" --estimator {}", estimator.label()));
                        }
                        if prescreen != PrescreenKind::default() {
                            hint.push_str(&format!(" --prescreen {}", prescreen.label()));
                        }
                        if args.has("--parallel") {
                            hint.push_str(" --parallel");
                        }
                        let msg = format!(
                            "{}: missing baseline {} ({e}); run `{hint} --out-dir {dir}` and commit it",
                            agg.scenario,
                            baseline_path.display(),
                        );
                        println!("{msg}");
                        failures.push(msg);
                    }
                    Ok(baseline) => {
                        let cmp = compare_aggregates(&baseline, &json);
                        println!("{}", cmp.summary);
                        for f in &cmp.failures {
                            eprintln!("  FAIL {f}");
                            failures.push(format!("{}: {f}", cmp.scenario));
                        }
                    }
                }
            }
        }
    }

    if failures.is_empty() {
        if baseline_dir.is_some() {
            println!(
                "aggregate gate: all {} cell group(s) within tolerance",
                report.aggregates.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("aggregate gate: {} failure(s)", failures.len());
        ExitCode::FAILURE
    }
}
