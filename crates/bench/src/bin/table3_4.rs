//! Reproduces Tables 3 and 4 of the MOHECO paper: yield-estimate deviation
//! and total simulation count for the two-stage telescopic-cascode amplifier
//! in 90 nm (example 2), comparing the fixed-budget `AS + LHS` baselines and
//! MOHECO.
//!
//! Run with `--paper` for the full-scale settings.

use moheco_analog::TelescopicTwoStage;
use moheco_bench::{print_deviation_table, print_simulation_table, run_method, Method};

fn main() {
    let scale = moheco_bench::cli::figure_binary_scale();
    println!(
        "Example 2 (two-stage telescopic cascode, 90nm): {} runs per method, reference yield from {} samples",
        scale.runs, scale.reference_samples
    );

    let budgets = scale.fixed_budgets();
    // The paper's Table 3/4 compares the 300- and 500-simulation baselines
    // against MOHECO for this (more expensive) circuit.
    let methods = [
        Method::FixedBudget(budgets[0]),
        Method::FixedBudget(budgets[1]),
        Method::Moheco,
    ];

    let outcomes: Vec<_> = methods
        .iter()
        .map(|&m| {
            eprintln!("running {} ...", m.label());
            (m, run_method(TelescopicTwoStage::new, m, &scale, 0xE2A2))
        })
        .collect();
    let rows: Vec<_> = outcomes.iter().map(|(m, o)| (*m, o)).collect();

    print_deviation_table(
        "Table 3: deviation of the reported yield from the reference yield (example 2)",
        &rows,
    );
    print_simulation_table("Table 4: total number of simulations (example 2)", &rows);

    let fixed = rows[1].1.simulation_summary();
    let moheco = rows[2].1.simulation_summary();
    if fixed.mean > 0.0 {
        println!(
            "\nMOHECO uses {:.1}% of the simulations of the {} baseline (paper: 14.16%)",
            100.0 * moheco.mean / fixed.mean,
            rows[1].0.label()
        );
    }
}
