//! Reproduces the nominal-sizing convergence observations of §3.3:
//! without process variations, example 1 converges in a few tens of
//! generations while example 2's severe specifications need hundreds of
//! generations for GA-family engines — and the memetic DE converges fastest.
//!
//! Run with `--paper` for larger populations and generation budgets.

use moheco_analog::{FoldedCascode, TelescopicTwoStage, Testbench};
use moheco_bench::{EngineKind, NominalSizingProblem};
use moheco_optim::de::{DeConfig, DifferentialEvolution};
use moheco_optim::ga::{GaConfig, GeneticAlgorithm};
use moheco_optim::memetic::{MemeticConfig, MemeticOptimizer};
use moheco_optim::penalty::PenaltyProblem;
use moheco_optim::problem::Problem;
use moheco_optim::result::OptimizationResult;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn report(label: &str, result: &OptimizationResult) {
    // The objective is the negated worst normalised spec margin once feasible;
    // "gens to feasible" is the generation at which a feasible sizing first
    // appeared in the history.
    let gens_to_feasible = result
        .generations_to_reach(0.0)
        .map(|g| g.to_string())
        .unwrap_or_else(|| "never".to_string());
    println!(
        "{:<28} feasible: {:<5} gens to feasible: {:>6} best worst-margin: {:>8.3} evaluations: {:>6}",
        label,
        result.is_feasible(),
        gens_to_feasible,
        -result.best_objective(),
        result.evaluations,
    );
}

fn run_engines<T: Testbench + Clone>(
    name: &str,
    tb: T,
    population: usize,
    generations: usize,
    engine: EngineKind,
) {
    println!(
        "\nNominal sizing of {name} (population {population}, up to {generations} generations)"
    );
    let de_cfg = DeConfig {
        population_size: population,
        max_generations: generations,
        stagnation_limit: None,
        // Target: every spec met with at least half a normalisation unit of
        // margin, which requires genuine optimization rather than a lucky
        // initial sample.
        target_objective: Some(-0.5),
        ..DeConfig::default()
    };

    let mut rng = StdRng::seed_from_u64(0x51E1);
    let mut p = NominalSizingProblem::with_engine(tb.clone(), engine.build());
    let de = DifferentialEvolution::new(de_cfg).run(&mut p, &mut rng);
    report("SBDE (DE + Deb rules)", &de);

    let mut rng = StdRng::seed_from_u64(0x51E1);
    let mut p = NominalSizingProblem::with_engine(tb.clone(), engine.build());
    let memetic = MemeticOptimizer::new(MemeticConfig {
        de: de_cfg,
        ..MemeticConfig::default()
    })
    .run(&mut p, &mut rng);
    report("Memetic DE + NM (MSOEA-like)", &memetic);

    let mut rng = StdRng::seed_from_u64(0x51E1);
    let mut p = NominalSizingProblem::with_engine(tb.clone(), engine.build());
    let ga = GeneticAlgorithm::new(GaConfig {
        population_size: population,
        max_generations: generations,
        stagnation_limit: None,
        target_objective: Some(-0.5),
        ..GaConfig::default()
    })
    .run(&mut p, &mut rng);
    report("Genetic algorithm", &ga);

    let mut rng = StdRng::seed_from_u64(0x51E1);
    let tb_check = tb.clone();
    let mut p = PenaltyProblem::new(NominalSizingProblem::with_engine(tb, engine.build()), 100.0);
    let pen = DifferentialEvolution::new(de_cfg).run(&mut p, &mut rng);
    // Re-check real feasibility of the penalty solution.
    let mut checker = NominalSizingProblem::new(tb_check);
    let feasible = checker.evaluate(&pen.best.x).is_feasible();
    println!(
        "{:<28} feasible: {:<5} gens to feasible: {:>6} best worst-margin: {:>8} evaluations: {:>6}",
        "DE + penalty function",
        feasible,
        pen.generations,
        "n/a",
        pen.evaluations
    );
}

fn main() {
    let scale = moheco_bench::cli::figure_binary_scale();
    let (population, gens_easy, gens_hard) = if scale.reference_samples >= 50_000 {
        (60, 120, 300)
    } else {
        (24, 40, 80)
    };
    run_engines(
        "example 1 (folded cascode)",
        FoldedCascode::new(),
        population,
        gens_easy,
        scale.engine,
    );
    run_engines(
        "example 2 (telescopic two-stage, severe specs)",
        TelescopicTwoStage::new(),
        population,
        gens_hard,
        scale.engine,
    );
    println!("\nPaper observation: example 1 converges in 20-30 generations while example 2 needs");
    println!("200-300 generations for the GA-family engines; only the DE-based engines succeed.");
}
