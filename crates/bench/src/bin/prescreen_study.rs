//! `prescreen-study` — measures what the surrogate prescreen buys.
//!
//! Runs every closed-form (oracle) scenario with the two-stage OO algorithm
//! twice per seed — `--prescreen off` vs `--prescreen rsb` — and aggregates
//! the simulation counts and final yields over the seeds. A scenario
//! *passes* when the prescreen saves at least [`SAVINGS_GATE_PCT`] percent
//! of the simulate() calls while the mean reported yield stays within the
//! baseline-gate tolerance ([`YIELD_TOLERANCE`]) of the unscreened run.
//!
//! The aggregate is written to `BENCH_prescreen.json` (flat schema, same
//! writer conventions as `RESULTS_*.json`) and a markdown cost table is
//! printed for the README. With `--strict` the binary exits non-zero unless
//! at least three scenarios pass — the CI invocation uses this.
//!
//! ```text
//! prescreen-study [--budget tiny|small|paper] [--seeds N] [--out FILE]
//!                 [--strict]
//! ```

use moheco::PrescreenKind;
use moheco_bench::results::{fmt_f64, YIELD_TOLERANCE};
use moheco_bench::{run_scenario_prescreened, Algo, BudgetClass, CliArgs, EngineKind};
use moheco_sampling::EstimatorKind;
use moheco_scenarios::all_scenarios;
use std::fmt::Write as _;
use std::process::ExitCode;

/// Minimum percentage of simulate() calls the prescreen must save.
const SAVINGS_GATE_PCT: f64 = 30.0;
/// Scenarios that must pass under `--strict`.
const STRICT_MIN_PASSING: usize = 3;

const USAGE: &str =
    "usage: prescreen-study [--budget tiny|small|paper] [--seeds N] [--out FILE] [--strict]";

struct Row {
    scenario: String,
    sims_off: u64,
    sims_rsb: u64,
    yield_off: f64,
    yield_rsb: f64,
    skips: u64,
    savings_pct: f64,
    pass: bool,
}

fn main() -> ExitCode {
    let args = CliArgs::parse();
    if let Err(e) = args.expect_only(&["--strict"], &["--budget", "--seeds", "--out"]) {
        eprintln!("error: {e}");
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let budget = match args.value_of("--budget") {
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
        Ok(None) => BudgetClass::Paper,
        Ok(Some(v)) => match BudgetClass::parse(v) {
            Some(b) => b,
            None => {
                eprintln!("error: unknown budget {v:?}");
                return ExitCode::from(2);
            }
        },
    };
    let seeds = match args.u64_of("--seeds", 3) {
        Ok(s) if s >= 1 => s,
        Ok(_) => {
            eprintln!("error: --seeds must be >= 1");
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let out_path = match args.value_of("--out") {
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
        Ok(v) => v.unwrap_or("BENCH_prescreen.json").to_string(),
    };

    let oracle: Vec<_> = all_scenarios()
        .into_iter()
        .filter(|s| s.has_true_yield())
        .collect();
    eprintln!(
        "prescreen-study: {} oracle scenario(s), algo two-stage, budget {}, seeds 1..={}",
        oracle.len(),
        budget.label(),
        seeds
    );

    let mut rows: Vec<Row> = Vec::new();
    for scenario in &oracle {
        let mut row = Row {
            scenario: scenario.name().to_string(),
            sims_off: 0,
            sims_rsb: 0,
            yield_off: 0.0,
            yield_rsb: 0.0,
            skips: 0,
            savings_pct: 0.0,
            pass: false,
        };
        for seed in 1..=seeds {
            for kind in [PrescreenKind::Off, PrescreenKind::Rsb] {
                let r = run_scenario_prescreened(
                    scenario.as_ref(),
                    Algo::TwoStage,
                    budget,
                    seed,
                    EngineKind::Serial,
                    EstimatorKind::default(),
                    kind,
                );
                match kind {
                    PrescreenKind::Off => {
                        row.sims_off += r.simulations;
                        row.yield_off += r.best_yield;
                    }
                    PrescreenKind::Rsb => {
                        row.sims_rsb += r.simulations;
                        row.yield_rsb += r.best_yield;
                        row.skips += r.prescreen_skips;
                    }
                }
            }
        }
        row.yield_off /= seeds as f64;
        row.yield_rsb /= seeds as f64;
        row.savings_pct = if row.sims_off > 0 {
            100.0 * (1.0 - row.sims_rsb as f64 / row.sims_off as f64)
        } else {
            0.0
        };
        row.pass = row.savings_pct >= SAVINGS_GATE_PCT
            && (row.yield_rsb - row.yield_off).abs() <= YIELD_TOLERANCE;
        rows.push(row);
    }
    let passing = rows.iter().filter(|r| r.pass).count();

    // Flat JSON record (same conventions as RESULTS_*.json).
    let mut json = String::from("{\n");
    let mut field = |k: &str, v: String| {
        let _ = writeln!(json, "  \"{k}\": {v},");
    };
    field("schema_version", "1".into());
    field("algo", "\"two-stage\"".into());
    field("budget", format!("\"{}\"", budget.label()));
    field("seeds", seeds.to_string());
    field("gate_savings_pct", fmt_f64(SAVINGS_GATE_PCT));
    field("gate_yield_tolerance", fmt_f64(YIELD_TOLERANCE));
    for r in &rows {
        field(&format!("{}_sims_off", r.scenario), r.sims_off.to_string());
        field(&format!("{}_sims_rsb", r.scenario), r.sims_rsb.to_string());
        field(
            &format!("{}_savings_pct", r.scenario),
            fmt_f64((r.savings_pct * 100.0).round() / 100.0),
        );
        field(&format!("{}_yield_off", r.scenario), fmt_f64(r.yield_off));
        field(&format!("{}_yield_rsb", r.scenario), fmt_f64(r.yield_rsb));
        field(&format!("{}_skips", r.scenario), r.skips.to_string());
        field(&format!("{}_pass", r.scenario), r.pass.to_string());
    }
    field("scenarios_total", rows.len().to_string());
    let _ = write!(json, "  \"scenarios_passing\": {passing}\n}}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }

    // Markdown cost table for the README.
    println!("| scenario | sims (off) | sims (rsb) | saved | yield (off) | yield (rsb) | gate |");
    println!("|---|---:|---:|---:|---:|---:|---|");
    for r in &rows {
        println!(
            "| {} | {} | {} | {:.1}% | {:.4} | {:.4} | {} |",
            r.scenario,
            r.sims_off,
            r.sims_rsb,
            r.savings_pct,
            r.yield_off,
            r.yield_rsb,
            if r.pass { "pass" } else { "-" }
        );
    }
    println!(
        "\n{passing} of {} oracle scenarios reach equivalent yield (±{YIELD_TOLERANCE}) with ≥{SAVINGS_GATE_PCT}% fewer simulations -> {out_path}",
        rows.len()
    );

    if args.has("--strict") && passing < STRICT_MIN_PASSING {
        eprintln!("strict gate: only {passing} scenario(s) passed (need {STRICT_MIN_PASSING})");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
