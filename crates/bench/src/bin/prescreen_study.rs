//! `prescreen-study` — measures what the surrogate prescreen buys, with
//! error bars.
//!
//! Runs every closed-form (oracle) scenario with the two-stage OO algorithm
//! twice per seed — `--prescreen off` vs `--prescreen rsb` — through the
//! campaign engine pool (one long-lived engine per scenario, reset between
//! cells), and aggregates simulation counts and final yields *across the
//! seeds as a distribution*: the study reports mean ± std, not a pooled
//! point estimate, because a single-seed comparison of two noisy
//! Monte-Carlo optimizations can record a "regression" that is pure seed
//! noise. A scenario *passes* when the **pooled** savings (1 − total rsb
//! sims / total off sims, the operationally meaningful "how much did the
//! prescreen save overall" number) reach [`SAVINGS_GATE_PCT`] percent of
//! the simulate() calls while the mean reported yield stays within the
//! baseline-gate tolerance ([`YIELD_TOLERANCE`]) of the unscreened run;
//! the per-seed savings-ratio std is the error bar on that number.
//!
//! The `two_basin` scenario carries a special verdict field: PR 4 recorded
//! it as a −16 % regression (the prescreen *cost* simulations), and this
//! study now either **confirms** the regression (pooled savings negative
//! *and* the per-seed distribution excludes zero by one std), **retracts**
//! it (pooled savings non-negative), or calls it **inconclusive** (pooled
//! savings negative but within one per-seed std of zero).
//!
//! The aggregate is written to `BENCH_prescreen.json` (flat schema, same
//! writer conventions as `RESULTS_*.json`) and a markdown cost table with
//! mean ± std columns is printed for the README. With `--strict` the binary
//! exits non-zero unless at least three scenarios pass — the CI invocation
//! uses this.
//!
//! ```text
//! prescreen-study [--budget tiny|small|paper] [--seeds N] [--out FILE]
//!                 [--strict]
//! ```

use moheco::{PrescreenKind, RunSummary};
use moheco_bench::campaign::CampaignEngines;
use moheco_bench::results::{fmt_f64, YIELD_TOLERANCE};
use moheco_bench::{Algo, BudgetClass, CliArgs, EngineKind, EngineReuse, RunSpec};
use moheco_sampling::EstimatorKind;
use moheco_scenarios::all_scenarios;
use std::fmt::Write as _;
use std::process::ExitCode;

/// Minimum *pooled* percentage of simulate() calls the prescreen must save
/// (`1 − total rsb sims / total off sims` across the seeds).
const SAVINGS_GATE_PCT: f64 = 30.0;
/// Scenarios that must pass under `--strict`.
const STRICT_MIN_PASSING: usize = 3;

const USAGE: &str =
    "usage: prescreen-study [--budget tiny|small|paper] [--seeds N] [--out FILE] [--strict]";

struct Row {
    scenario: String,
    /// Pooled savings: `1 − total rsb sims / total off sims`, the
    /// operationally meaningful "how much did the prescreen save" number
    /// (and the PR-4 headline metric) — gated.
    savings_pooled_pct: f64,
    /// Per-seed savings-ratio distribution — the error bar on the pooled
    /// number.
    savings: RunSummary,
    yield_off: RunSummary,
    yield_rsb: RunSummary,
    sims_off: RunSummary,
    sims_rsb: RunSummary,
    skips: u64,
    pass: bool,
}

/// Verdict on a previously recorded regression: *confirmed* when the pooled
/// savings are negative and the per-seed distribution excludes zero by one
/// std, *retracted* when the pooled savings are non-negative, otherwise
/// *inconclusive* (the effect cannot be distinguished from seed noise).
fn regression_verdict(pooled_pct: f64, savings: &RunSummary) -> &'static str {
    if pooled_pct >= 0.0 {
        "retracted"
    } else if savings.mean + savings.std_dev() < 0.0 {
        "confirmed"
    } else {
        "inconclusive"
    }
}

fn main() -> ExitCode {
    let args = CliArgs::parse();
    if let Err(e) = args.expect_only(&["--strict"], &["--budget", "--seeds", "--out"]) {
        eprintln!("error: {e}");
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let budget = match args.value_of("--budget") {
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
        Ok(None) => BudgetClass::Paper,
        Ok(Some(v)) => match BudgetClass::parse(v) {
            Some(b) => b,
            None => {
                eprintln!("error: unknown budget {v:?}");
                return ExitCode::from(2);
            }
        },
    };
    let seeds = match args.u64_of("--seeds", 3) {
        Ok(s) if s >= 1 => s,
        Ok(_) => {
            eprintln!("error: --seeds must be >= 1");
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let out_path = match args.value_of("--out") {
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
        Ok(v) => v.unwrap_or("BENCH_prescreen.json").to_string(),
    };

    let oracle: Vec<_> = all_scenarios()
        .into_iter()
        .filter(|s| s.has_true_yield())
        .collect();
    eprintln!(
        "prescreen-study: {} oracle scenario(s), algo two-stage, budget {}, seeds 1..={} (campaign engine pool)",
        oracle.len(),
        budget.label(),
        seeds
    );

    // One long-lived engine per scenario; a full reset between cells keeps
    // every run bit-identical to a standalone invocation.
    let mut engines = CampaignEngines::new(
        EngineKind::Serial,
        EstimatorKind::default(),
        0,
        EngineReuse::Reset,
    );

    let mut rows: Vec<Row> = Vec::new();
    for scenario in &oracle {
        let mut yields_off = Vec::new();
        let mut yields_rsb = Vec::new();
        let mut sims_off = Vec::new();
        let mut sims_rsb = Vec::new();
        let mut savings = Vec::new();
        let mut skips = 0u64;
        for seed in 1..=seeds {
            let mut per_kind = [0u64; 2];
            for (i, kind) in [PrescreenKind::Off, PrescreenKind::Rsb]
                .into_iter()
                .enumerate()
            {
                let engine = engines.prepare(scenario.name(), seed);
                let r = RunSpec::new(scenario.as_ref(), Algo::TwoStage)
                    .budget(budget)
                    .seed(seed)
                    .engine(engine)
                    .engine_label(EngineKind::Serial.label())
                    .prescreen(kind)
                    .execute();
                per_kind[i] = r.simulations;
                match kind {
                    PrescreenKind::Off => yields_off.push(r.best_yield),
                    PrescreenKind::Rsb => {
                        yields_rsb.push(r.best_yield);
                        skips += r.prescreen_skips;
                    }
                }
            }
            sims_off.push(per_kind[0] as f64);
            sims_rsb.push(per_kind[1] as f64);
            savings.push(if per_kind[0] > 0 {
                100.0 * (1.0 - per_kind[1] as f64 / per_kind[0] as f64)
            } else {
                0.0
            });
        }
        let savings = RunSummary::of(&savings);
        let yield_off = RunSummary::of(&yields_off);
        let yield_rsb = RunSummary::of(&yields_rsb);
        let total_off: f64 = sims_off.iter().sum();
        let total_rsb: f64 = sims_rsb.iter().sum();
        let savings_pooled_pct = if total_off > 0.0 {
            100.0 * (1.0 - total_rsb / total_off)
        } else {
            0.0
        };
        let pass = savings_pooled_pct >= SAVINGS_GATE_PCT
            && (yield_rsb.mean - yield_off.mean).abs() <= YIELD_TOLERANCE;
        rows.push(Row {
            scenario: scenario.name().to_string(),
            savings_pooled_pct,
            savings,
            yield_off,
            yield_rsb,
            sims_off: RunSummary::of(&sims_off),
            sims_rsb: RunSummary::of(&sims_rsb),
            skips,
            pass,
        });
    }
    let passing = rows.iter().filter(|r| r.pass).count();

    // Flat JSON record (same conventions as RESULTS_*.json). v2: per-seed
    // statistics (mean ± std) replace the pooled single-pass totals, and
    // regression verdicts are recorded explicitly.
    let mut json = String::from("{\n");
    let mut field = |k: &str, v: String| {
        let _ = writeln!(json, "  \"{k}\": {v},");
    };
    field("schema_version", "2".into());
    field("algo", "\"two-stage\"".into());
    field("budget", format!("\"{}\"", budget.label()));
    field("seeds", seeds.to_string());
    field("gate_savings_pct", fmt_f64(SAVINGS_GATE_PCT));
    field("gate_yield_tolerance", fmt_f64(YIELD_TOLERANCE));
    for r in &rows {
        let s = &r.scenario;
        field(&format!("{s}_sims_off_mean"), fmt_f64(r.sims_off.mean));
        field(&format!("{s}_sims_off_std"), fmt_f64(r.sims_off.std_dev()));
        field(&format!("{s}_sims_rsb_mean"), fmt_f64(r.sims_rsb.mean));
        field(&format!("{s}_sims_rsb_std"), fmt_f64(r.sims_rsb.std_dev()));
        field(
            &format!("{s}_savings_pct_pooled"),
            fmt_f64((r.savings_pooled_pct * 100.0).round() / 100.0),
        );
        field(
            &format!("{s}_savings_pct_mean"),
            fmt_f64((r.savings.mean * 100.0).round() / 100.0),
        );
        field(
            &format!("{s}_savings_pct_std"),
            fmt_f64((r.savings.std_dev() * 100.0).round() / 100.0),
        );
        field(&format!("{s}_yield_off_mean"), fmt_f64(r.yield_off.mean));
        field(
            &format!("{s}_yield_off_std"),
            fmt_f64(r.yield_off.std_dev()),
        );
        field(&format!("{s}_yield_rsb_mean"), fmt_f64(r.yield_rsb.mean));
        field(
            &format!("{s}_yield_rsb_std"),
            fmt_f64(r.yield_rsb.std_dev()),
        );
        field(&format!("{s}_skips"), r.skips.to_string());
        field(&format!("{s}_pass"), r.pass.to_string());
    }
    // The PR-4 two_basin "regression": confirmed or retracted with error
    // bars (mean ± std across the seeds) instead of a single-seed pool.
    if let Some(tb) = rows.iter().find(|r| r.scenario == "two_basin") {
        field(
            "two_basin_regression",
            format!(
                "\"{}\"",
                regression_verdict(tb.savings_pooled_pct, &tb.savings)
            ),
        );
    }
    field("scenarios_total", rows.len().to_string());
    let _ = write!(json, "  \"scenarios_passing\": {passing}\n}}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }

    // Markdown cost table for the README (mean ± std over the seeds).
    println!("| scenario | sims (off) | sims (rsb) | saved | yield (off) | yield (rsb) | gate |");
    println!("|---|---:|---:|---:|---:|---:|---|");
    for r in &rows {
        println!(
            "| {} | {:.0} ± {:.0} | {:.0} ± {:.0} | {:.1}% ± {:.1} | {:.4} ± {:.4} | {:.4} ± {:.4} | {} |",
            r.scenario,
            r.sims_off.mean,
            r.sims_off.std_dev(),
            r.sims_rsb.mean,
            r.sims_rsb.std_dev(),
            r.savings_pooled_pct,
            r.savings.std_dev(),
            r.yield_off.mean,
            r.yield_off.std_dev(),
            r.yield_rsb.mean,
            r.yield_rsb.std_dev(),
            if r.pass { "pass" } else { "-" }
        );
    }
    if let Some(tb) = rows.iter().find(|r| r.scenario == "two_basin") {
        println!(
            "\ntwo_basin regression verdict: **{}** (pooled savings {:.1}%, per-seed {:.1}% ± {:.1} across {} seeds)",
            regression_verdict(tb.savings_pooled_pct, &tb.savings),
            tb.savings_pooled_pct,
            tb.savings.mean,
            tb.savings.std_dev(),
            seeds
        );
    }
    println!(
        "\n{passing} of {} oracle scenarios reach equivalent mean yield (±{YIELD_TOLERANCE}) with ≥{SAVINGS_GATE_PCT}% pooled simulation savings -> {out_path}",
        rows.len()
    );

    if args.has("--strict") && passing < STRICT_MIN_PASSING {
        eprintln!("strict gate: only {passing} scenario(s) passed (need {STRICT_MIN_PASSING})");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
