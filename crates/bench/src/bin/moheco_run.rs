//! `moheco-run` — the unified experiment runner over the scenario registry.
//!
//! ```text
//! moheco-run [--scenario <name>|all] [--algo de|ga|memetic|two-stage]
//!            [--budget tiny|small|paper] [--estimator mc|lhs|antithetic|is]
//!            [--prescreen off|rsb] [--seed N] [--parallel] [--out-dir DIR]
//!            [--baseline-dir DIR] [--obs off|jsonl:FILE] [--list]
//! ```
//!
//! Every selected scenario is executed through the evaluation engine and
//! written as one machine-readable `RESULTS_<scenario>.json` record in a
//! stable schema (see `moheco-bench/src/results.rs` and `DESIGN.md`). With
//! `--baseline-dir`, each fresh result is gated against a *per-run*
//! baseline record of the same scenario: the binary prints a one-line trend
//! summary per scenario and exits non-zero on schema drift, on a missing
//! baseline, or on a yield deviation beyond ±5 percentage points.
//!
//! Note the committed `baselines/` directory holds **multi-seed aggregate**
//! records since schema v4; the CI gate runs through `moheco-campaign`
//! (aggregate medians over 3 seeds), while a single-seed `moheco-run`
//! invocation stays in CI as the cheap ungated smoke path. Point
//! `--baseline-dir` only at directories of per-run records you generated
//! with this binary.
//!
//! With `--obs jsonl:FILE`, every selected scenario runs under a span
//! tracer: the full phase event stream (plus one `run_summary` record per
//! scenario) is appended to `FILE`, ready for `moheco-profile`. Each
//! scenario uses a fresh engine, so per-scenario attribution in the stream
//! is self-contained. The tracer never touches the search RNG — results are
//! bit-identical with observability on or off.

use moheco::PrescreenKind;
use moheco_bench::results::compare_results;
use moheco_bench::{Algo, BudgetClass, CliArgs, RunSpec};
use moheco_obs::{JsonlCollector, Tracer};
use moheco_sampling::EstimatorKind;
use moheco_scenarios::{all_scenarios, find_scenario, Scenario};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "usage: moheco-run [--scenario <name>|all] [--algo de|ga|memetic|two-stage] \
[--budget tiny|small|paper] [--estimator mc|lhs|antithetic|is] [--prescreen off|rsb] [--seed N] \
[--parallel] [--out-dir DIR] [--baseline-dir DIR] [--obs off|jsonl:FILE] [--list]";

fn fail(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args = CliArgs::parse();
    if let Err(e) = args.expect_only(
        &["--parallel", "--list"],
        &[
            "--scenario",
            "--algo",
            "--budget",
            "--estimator",
            "--prescreen",
            "--seed",
            "--out-dir",
            "--baseline-dir",
            "--obs",
        ],
    ) {
        return fail(&e);
    }

    if args.has("--list") {
        println!(
            "{:<24} {:>4} {:>5} {:>6} {:<6} description",
            "scenario", "dim", "stats", "specs", "truth"
        );
        for s in all_scenarios() {
            println!(
                "{:<24} {:>4} {:>5} {:>6} {:<6} {}",
                s.name(),
                s.dimension(),
                s.statistical_dimension(),
                s.spec_names().len(),
                if s.has_true_yield() { "exact" } else { "mc" },
                s.description()
            );
        }
        return ExitCode::SUCCESS;
    }

    let scenarios: Vec<Arc<dyn Scenario>> = match args.value_of("--scenario") {
        Err(e) => return fail(&e),
        Ok(None) | Ok(Some("all")) => all_scenarios(),
        Ok(Some(name)) => match find_scenario(name) {
            Some(s) => vec![s],
            None => {
                let names = moheco_scenarios::scenario_names().join(", ");
                return fail(&format!("unknown scenario {name:?}; registered: {names}"));
            }
        },
    };
    let algo = match args.value_of("--algo") {
        Err(e) => return fail(&e),
        Ok(None) => Algo::default(),
        Ok(Some(v)) => match Algo::parse(v) {
            Some(a) => a,
            None => return fail(&format!("unknown algo {v:?}")),
        },
    };
    let budget = match args.value_of("--budget") {
        Err(e) => return fail(&e),
        Ok(None) => BudgetClass::default(),
        Ok(Some(v)) => match BudgetClass::parse(v) {
            Some(b) => b,
            None => return fail(&format!("unknown budget {v:?}")),
        },
    };
    let estimator = match args.value_of("--estimator") {
        Err(e) => return fail(&e),
        Ok(None) => EstimatorKind::default(),
        Ok(Some(v)) => match EstimatorKind::parse(v) {
            Some(k) => k,
            None => {
                return fail(&format!(
                    "unknown estimator {v:?}; expected mc, lhs, antithetic or is"
                ))
            }
        },
    };
    let prescreen = match args.value_of("--prescreen") {
        Err(e) => return fail(&e),
        Ok(None) => PrescreenKind::default(),
        Ok(Some(v)) => match PrescreenKind::parse(v) {
            Some(k) => k,
            None => return fail(&format!("unknown prescreen {v:?}; expected off or rsb")),
        },
    };
    let seed = match args.u64_of("--seed", 1) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let out_dir = match args.value_of("--out-dir") {
        Err(e) => return fail(&e),
        Ok(v) => v.unwrap_or(".").to_string(),
    };
    let baseline_dir = match args.value_of("--baseline-dir") {
        Err(e) => return fail(&e),
        Ok(v) => v.map(str::to_string),
    };
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        return fail(&format!("cannot create out dir {out_dir:?}: {e}"));
    }
    let obs = match args.value_of("--obs") {
        Err(e) => return fail(&e),
        Ok(v) => v.unwrap_or("off").to_string(),
    };
    // One collector (one output stream) shared by all scenarios, but a fresh
    // tracer per scenario so each RESULTS record carries only its own
    // phase breakdown.
    let collector: Option<Arc<JsonlCollector>> = if obs == "off" {
        None
    } else if let Some(path) = obs.strip_prefix("jsonl:") {
        match JsonlCollector::create(Path::new(path)) {
            Ok(c) => Some(Arc::new(c)),
            Err(e) => return fail(&format!("cannot create obs stream {path:?}: {e}")),
        }
    } else {
        return fail(&format!(
            "unknown obs mode {obs:?}; expected off or jsonl:FILE"
        ));
    };

    let engine_kind = args.engine_kind();
    let mut failures: Vec<String> = Vec::new();
    eprintln!(
        "moheco-run: {} scenario(s), algo {}, budget {}, estimator {}, prescreen {}, seed {seed}, {} engine",
        scenarios.len(),
        algo.label(),
        budget.label(),
        estimator.label(),
        prescreen.label(),
        if args.has("--parallel") {
            "parallel"
        } else {
            "serial"
        },
    );
    if let Some(path) = obs.strip_prefix("jsonl:") {
        eprintln!("moheco-run: obs event stream -> {path}");
    }

    for scenario in &scenarios {
        let tracer = match &collector {
            Some(c) => Tracer::new(c.clone()),
            None => Tracer::disabled(),
        };
        let result = RunSpec::new(scenario.as_ref(), algo)
            .budget(budget)
            .seed(seed)
            .engine_kind(engine_kind)
            .estimator(estimator)
            .prescreen(prescreen)
            .tracer(&tracer)
            .execute();
        let json = result.to_json();
        let path = Path::new(&out_dir).join(result.file_name());
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }

        match &baseline_dir {
            None => {
                println!(
                    "{}: yield {:.4} ±{:.4}{} sims {} cache {:.0}% gens {} ({:.0} ms) -> {}",
                    result.scenario,
                    result.best_yield,
                    result.ci_half_width,
                    result
                        .true_yield
                        .map(|t| format!(" (truth {t:.4})"))
                        .unwrap_or_default(),
                    result.simulations,
                    100.0 * result.engine_stats.hit_rate(),
                    result.generations,
                    result.wall_time_ms,
                    path.display()
                );
            }
            Some(dir) => {
                let baseline_path = Path::new(dir).join(result.file_name());
                match std::fs::read_to_string(&baseline_path) {
                    Err(e) => {
                        let msg = format!(
                            "{}: missing baseline {} ({e}); run `moheco-run --scenario {} --algo {} --budget {} --seed {seed}{} --out-dir {dir}` and commit it",
                            result.scenario,
                            baseline_path.display(),
                            result.scenario,
                            algo.label(),
                            budget.label(),
                            if engine_kind == moheco_bench::EngineKind::Parallel {
                                " --parallel"
                            } else {
                                ""
                            }
                        );
                        println!("{msg}");
                        failures.push(msg);
                    }
                    Ok(baseline) => {
                        let cmp = compare_results(&baseline, &json);
                        println!("{}", cmp.summary);
                        for f in &cmp.failures {
                            let msg = format!("{}: {f}", cmp.scenario);
                            eprintln!("  FAIL {f}");
                            failures.push(msg);
                        }
                    }
                }
            }
        }
    }

    if failures.is_empty() {
        if baseline_dir.is_some() {
            println!(
                "baseline gate: all {} scenario(s) within tolerance",
                scenarios.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("baseline gate: {} failure(s)", failures.len());
        ExitCode::FAILURE
    }
}
