//! Reproduces Tables 1 and 2 (and the Fig. 6 series) of the MOHECO paper:
//! yield-estimate deviation and total simulation count for the folded-cascode
//! amplifier (example 1), comparing the fixed-budget `AS + LHS` baselines,
//! `OO + AS + LHS` and full MOHECO.
//!
//! Run with `--paper` for the full-scale settings (10 runs, population 50,
//! 50 000-sample reference yields); the default settings are scaled down so
//! the binary finishes in a few minutes.

use moheco_analog::FoldedCascode;
use moheco_bench::{
    print_deviation_table, print_fig6_csv, print_simulation_table, run_method, Method,
};

fn main() {
    let scale = moheco_bench::cli::figure_binary_scale();
    println!(
        "Example 1 (folded cascode, 0.35um): {} runs per method, reference yield from {} samples",
        scale.runs, scale.reference_samples
    );

    let budgets = scale.fixed_budgets();
    let mut methods: Vec<Method> = budgets.iter().map(|&b| Method::FixedBudget(b)).collect();
    methods.push(Method::OoOnly);
    methods.push(Method::Moheco);

    let outcomes: Vec<_> = methods
        .iter()
        .map(|&m| {
            eprintln!("running {} ...", m.label());
            (m, run_method(FoldedCascode::new, m, &scale, 0xE1A1))
        })
        .collect();
    let rows: Vec<_> = outcomes.iter().map(|(m, o)| (*m, o)).collect();

    print_deviation_table(
        "Table 1: deviation of the reported yield from the reference yield (example 1)",
        &rows,
    );
    print_simulation_table("Table 2: total number of simulations (example 1)", &rows);
    print_fig6_csv(&rows);

    // Headline ratio of the paper: MOHECO uses ~1/7 of the simulations of the
    // AS+LHS-500 flow (the middle fixed budget here).
    let mid_fixed = rows[1].1.simulation_summary();
    let moheco = rows
        .last()
        .expect("methods non-empty")
        .1
        .simulation_summary();
    if mid_fixed.mean > 0.0 {
        println!(
            "\nMOHECO uses {:.1}% of the simulations of the {} baseline (paper: ~14%)",
            100.0 * moheco.mean / mid_fixed.mean,
            rows[1].0.label()
        );
    }
}
