//! `schedule-study` — measures what adaptive campaign scheduling buys.
//!
//! Runs every registered scenario through two campaigns with the two-stage
//! OO algorithm — `fixed` (the full seed rectangle) vs the adaptive arm
//! selected by `--schedule` (`ocba`: seed replications allocated by
//! cross-seed variance, groups stopped once their 95 % CI half-width clears
//! the gate; `ocba-shrink`, the default: additionally starts every group at
//! the cheapest budget-class rung and escalates only the groups whose CI
//! never clears at the cheap rung) — and compares, per scenario, the total
//! simulations spent and the cross-seed median yield reached. Simulation
//! totals come from the scheduler's own group accounting, so discarded
//! cheap pilots are **included** in the adaptive arm's bill. A scenario's medians are **equal** when they
//! differ by no more than the larger of the fixed campaign's own cross-seed
//! CI half-width and the baseline-gate tolerance
//! ([`YIELD_TOLERANCE`]) — tighter than the fixed campaign can
//! resolve itself is a distinction without a difference. The headline
//! number is the **pooled oracle savings**: across the closed-form (oracle)
//! scenarios, `1 − total ocba sims / total fixed sims`.
//!
//! The binary always verifies the OCBA min-seeds floor — every
//! (scenario, algo) group that stopped early must still have run at least
//! `min(3, pool)` seeds — and exits non-zero on a violation. With
//! `--strict` it additionally fails unless the pooled oracle savings reach
//! [`SAVINGS_GATE_PCT`] percent with every oracle median equal. The
//! aggregate is written to `BENCH_schedule.json` and a markdown savings
//! table for the README is printed.
//!
//! Both campaigns stream through the standard resumable
//! [`moheco_bench::CellWriter`] files under `--data-dir`, so an interrupted
//! study resumes instead of re-simulating.
//!
//! ```text
//! schedule-study [--budget tiny|small|paper] [--schedule ocba|ocba-shrink]
//!                [--seeds N] [--data-dir DIR] [--out FILE] [--strict]
//! ```

use moheco_bench::campaign::run_campaign;
use moheco_bench::results::{fmt_f64, AggregateResult, YIELD_TOLERANCE};
use moheco_bench::{Algo, BudgetClass, CliArgs, GroupOutcome, JobSpec, OcbaSchedule, ScheduleKind};
use moheco_scenarios::all_scenarios;
use std::fmt::Write as _;
use std::path::Path;
use std::process::ExitCode;

/// Minimum pooled percentage of simulations the adaptive schedule must save
/// across the oracle scenarios (`1 − total ocba sims / total fixed sims`)
/// under `--strict`.
const SAVINGS_GATE_PCT: f64 = 25.0;

const USAGE: &str = "usage: schedule-study [--budget tiny|small|paper] \
[--schedule ocba|ocba-shrink] [--seeds N] [--data-dir DIR] [--out FILE] [--strict]";

struct Row {
    scenario: String,
    oracle: bool,
    final_budget: BudgetClass,
    sims_fixed: u64,
    sims_ocba: u64,
    median_fixed: f64,
    median_ocba: f64,
    ci_fixed: f64,
    ci_ocba: f64,
    seeds_used: usize,
    seeds_saved: usize,
    median_equal: bool,
}

fn fail(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn find<'a>(aggregates: &'a [AggregateResult], scenario: &str) -> Option<&'a AggregateResult> {
    aggregates.iter().find(|a| a.scenario == scenario)
}

fn group_of<'a>(groups: &'a [GroupOutcome], scenario: &str) -> Option<&'a GroupOutcome> {
    groups
        .iter()
        .find(|g| g.scenario == scenario && g.algo == "two-stage")
}

fn main() -> ExitCode {
    let args = CliArgs::parse();
    if let Err(e) = args.expect_only(
        &["--strict"],
        &["--budget", "--schedule", "--seeds", "--data-dir", "--out"],
    ) {
        return fail(&e);
    }
    let budget = match args.value_of("--budget") {
        Err(e) => return fail(&e),
        Ok(None) => BudgetClass::Tiny,
        Ok(Some(v)) => match BudgetClass::parse(v) {
            Some(b) => b,
            None => return fail(&format!("unknown budget {v:?}")),
        },
    };
    let adaptive = match args.value_of("--schedule") {
        Err(e) => return fail(&e),
        Ok(None) => ScheduleKind::OcbaShrink,
        Ok(Some(v)) => match ScheduleKind::parse(v) {
            Some(k) if k != ScheduleKind::Fixed => k,
            _ => {
                return fail(&format!(
                    "unknown schedule {v:?}; expected ocba or ocba-shrink"
                ))
            }
        },
    };
    let seeds = match args.u64_of("--seeds", 8) {
        Ok(s) if s >= 1 => s,
        Ok(_) => return fail("--seeds must be >= 1"),
        Err(e) => return fail(&e),
    };
    let data_dir = match args.value_of("--data-dir") {
        Err(e) => return fail(&e),
        Ok(v) => v.unwrap_or("schedule-study-data").to_string(),
    };
    let out_path = match args.value_of("--out") {
        Err(e) => return fail(&e),
        Ok(v) => v.unwrap_or("BENCH_schedule.json").to_string(),
    };

    let scenarios = all_scenarios();
    let floor = OcbaSchedule::default().min_seeds.min(seeds as usize);
    eprintln!(
        "schedule-study: {} scenario(s), algo two-stage, budget {}, seed pool 1..={}, fixed vs {}, floor {}",
        scenarios.len(),
        budget.label(),
        seeds,
        adaptive.label(),
        floor,
    );

    let base = JobSpec {
        scenarios: scenarios.iter().map(|s| s.name().to_string()).collect(),
        algos: vec![Algo::TwoStage],
        budget,
        seeds: (1..=seeds).collect(),
        ..JobSpec::default()
    };
    let mut reports = Vec::new();
    for schedule in [ScheduleKind::Fixed, adaptive] {
        let spec = JobSpec {
            schedule,
            ..base.clone()
        };
        let jsonl = Path::new(&data_dir).join(format!("{}.jsonl", schedule.label()));
        eprintln!(
            "running the {} campaign -> {}",
            schedule.label(),
            jsonl.display()
        );
        let report = match run_campaign(&spec, &jsonl, |line| eprintln!("  {line}")) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!(
            "  {} executed, {} resumed, {} round(s), {} seed(s) saved",
            report.executed, report.resumed, report.schedule.rounds, report.schedule.seeds_saved,
        );
        reports.push(report);
    }
    let (fixed, ocba) = (&reports[0], &reports[1]);

    // The floor check: every group the adaptive schedule stopped early must
    // still hold at least `floor` seeds. This is unconditional — a floor
    // violation means the scheduler is broken, not that the study "failed".
    let mut floor_violations = Vec::new();
    for agg in &ocba.aggregates {
        if agg.seeds.len() < floor {
            floor_violations.push(format!(
                "{}/{}: only {} seed(s), floor is {floor}",
                agg.scenario,
                agg.algo,
                agg.seeds.len()
            ));
        }
    }
    if !floor_violations.is_empty() {
        for v in &floor_violations {
            eprintln!("floor violation: {v}");
        }
        return ExitCode::FAILURE;
    }

    let mut rows = Vec::new();
    for scenario in &scenarios {
        let (Some(f), Some(o)) = (
            find(&fixed.aggregates, scenario.name()),
            find(&ocba.aggregates, scenario.name()),
        ) else {
            eprintln!("error: missing aggregates for {}", scenario.name());
            return ExitCode::FAILURE;
        };
        let ci_fixed = f.best_yield_ci_half_width();
        let median_equal =
            (o.best_yield.median - f.best_yield.median).abs() <= ci_fixed.max(YIELD_TOLERANCE);
        // Simulation bills come from the scheduler's group accounting, so
        // the adaptive arm pays for its discarded cheap pilots too.
        let (Some(gf), Some(go)) = (
            group_of(&fixed.schedule.groups, scenario.name()),
            group_of(&ocba.schedule.groups, scenario.name()),
        ) else {
            eprintln!("error: missing schedule groups for {}", scenario.name());
            return ExitCode::FAILURE;
        };
        rows.push(Row {
            scenario: scenario.name().to_string(),
            oracle: scenario.has_true_yield(),
            final_budget: go.final_budget,
            sims_fixed: gf.simulations,
            sims_ocba: go.simulations,
            median_fixed: f.best_yield.median,
            median_ocba: o.best_yield.median,
            ci_fixed,
            ci_ocba: o.best_yield_ci_half_width(),
            seeds_used: o.seeds.len(),
            seeds_saved: seeds as usize - o.seeds.len(),
            median_equal,
        });
    }

    let oracle_fixed: u64 = rows.iter().filter(|r| r.oracle).map(|r| r.sims_fixed).sum();
    let oracle_ocba: u64 = rows.iter().filter(|r| r.oracle).map(|r| r.sims_ocba).sum();
    let oracle_savings_pct = if oracle_fixed > 0 {
        100.0 * (1.0 - oracle_ocba as f64 / oracle_fixed as f64)
    } else {
        0.0
    };
    let oracle_total = rows.iter().filter(|r| r.oracle).count();
    let oracle_equal = rows.iter().filter(|r| r.oracle && r.median_equal).count();
    let pass = oracle_savings_pct >= SAVINGS_GATE_PCT && oracle_equal == oracle_total;

    // Flat JSON record, same writer conventions as BENCH_prescreen.json.
    let mut json = String::from("{\n");
    let mut field = |k: &str, v: String| {
        let _ = writeln!(json, "  \"{k}\": {v},");
    };
    field("schema_version", "2".into());
    field("schedule", format!("\"{}\"", adaptive.label()));
    field("algo", "\"two-stage\"".into());
    field("budget", format!("\"{}\"", budget.label()));
    field("seed_pool", seeds.to_string());
    field("min_seeds_floor", floor.to_string());
    field("gate_savings_pct", fmt_f64(SAVINGS_GATE_PCT));
    field("gate_yield_tolerance", fmt_f64(YIELD_TOLERANCE));
    for r in &rows {
        let s = &r.scenario;
        field(&format!("{s}_sims_fixed"), r.sims_fixed.to_string());
        field(&format!("{s}_sims_ocba"), r.sims_ocba.to_string());
        field(
            &format!("{s}_savings_pct"),
            fmt_f64(if r.sims_fixed > 0 {
                (10_000.0 * (1.0 - r.sims_ocba as f64 / r.sims_fixed as f64)).round() / 100.0
            } else {
                0.0
            }),
        );
        field(&format!("{s}_median_fixed"), fmt_f64(r.median_fixed));
        field(&format!("{s}_median_ocba"), fmt_f64(r.median_ocba));
        field(&format!("{s}_ci_fixed"), fmt_f64(r.ci_fixed));
        field(&format!("{s}_ci_ocba"), fmt_f64(r.ci_ocba));
        field(
            &format!("{s}_final_budget"),
            format!("\"{}\"", r.final_budget.label()),
        );
        field(&format!("{s}_seeds_used"), r.seeds_used.to_string());
        field(&format!("{s}_seeds_saved"), r.seeds_saved.to_string());
        field(&format!("{s}_median_equal"), r.median_equal.to_string());
    }
    field(
        "oracle_savings_pct_pooled",
        fmt_f64((oracle_savings_pct * 100.0).round() / 100.0),
    );
    field("oracle_scenarios_total", oracle_total.to_string());
    field("oracle_scenarios_equal", oracle_equal.to_string());
    let _ = write!(json, "  \"pass\": {pass}\n}}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }

    // Markdown savings table for the README.
    println!(
        "| scenario | sims (fixed) | sims ({label}) | saved | final budget | seeds used | median (fixed) | median ({label}) | equal |",
        label = adaptive.label()
    );
    println!("|---|---:|---:|---:|---|---:|---:|---:|---|");
    for r in &rows {
        println!(
            "| {}{} | {} | {} | {:.1}% | {} | {}/{} | {:.4} ±{:.4} | {:.4} ±{:.4} | {} |",
            r.scenario,
            if r.oracle { "" } else { " †" },
            r.sims_fixed,
            r.sims_ocba,
            if r.sims_fixed > 0 {
                100.0 * (1.0 - r.sims_ocba as f64 / r.sims_fixed as f64)
            } else {
                0.0
            },
            r.final_budget.label(),
            r.seeds_used,
            seeds,
            r.median_fixed,
            r.ci_fixed,
            r.median_ocba,
            r.ci_ocba,
            if r.median_equal { "yes" } else { "NO" },
        );
    }
    println!("\n† circuit scenario (no closed-form oracle; reported, not gated)");
    println!(
        "\npooled oracle savings {oracle_savings_pct:.1}% ({oracle_equal}/{oracle_total} oracle medians equal, floor {floor} honored) -> {out_path}"
    );

    if args.has("--strict") && !pass {
        eprintln!(
            "strict gate: pooled oracle savings {oracle_savings_pct:.1}% (need ≥{SAVINGS_GATE_PCT}%) with {oracle_equal}/{oracle_total} medians equal"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
