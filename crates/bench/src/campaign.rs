//! The campaign layer: seed × scenario × algorithm grids as one long-lived
//! process.
//!
//! Every verdict this repository used to produce — the CI yield gate, the
//! prescreen study's recorded regressions, the estimator cost tables — was a
//! *single-seed point estimate*, so a pass/fail could be pure seed noise.
//! [`run_campaign`] executes the full grid of a [`JobSpec`] and moves the
//! trust boundary to statistics over repeated runs:
//!
//! * **Engine reuse** — one engine per scenario lives for the whole
//!   campaign. In the default [`EngineReuse::Reset`] mode it is reseeded and
//!   fully reset before each cell, so every row is bit-identical to a
//!   standalone `moheco-run` invocation of the same
//!   `(scenario, algo, budget, seed, estimator, prescreen)`. The opt-in
//!   [`EngineReuse::SharedCache`] mode keeps the cache warm across cells:
//!   sample streams are seed-keyed, so every *yield* is still bit-identical —
//!   only the executed-simulation counters shrink (cache hits replace
//!   re-simulation), which is why shared-cache rows are not byte-comparable
//!   to standalone runs and `Reset` is the default.
//! * **Streaming resume** — each completed cell appends one deterministic
//!   JSONL row ([`crate::results::ScenarioResult::to_jsonl_row`]) through a
//!   [`CellWriter`], and the file is the source of truth: a killed campaign
//!   restarted with the same spec skips the rows already on disk (a
//!   trailing partial line from a mid-write kill is dropped). In the
//!   default `Reset` mode — where cells are independent — the resumed file
//!   is **byte-identical** to an uninterrupted run. In `SharedCache` mode
//!   only the *yields and trajectories* of post-resume rows are guaranteed
//!   identical: skipped cells never warmed the cache, so the
//!   executed-simulation counters of later rows can be larger than in an
//!   uninterrupted run. A sidecar `<jsonl>.spec` fingerprint
//!   ([`JobSpec::fingerprint`]) pins the reuse mode and cache bound, so a
//!   file can never be resumed under a different counter regime. The same
//!   `CellWriter` machinery backs `moheco-serve`'s HTTP jobs, so a killed
//!   and resumed *streamed* job reproduces the identical bytes too.
//! * **Aggregation** — after the grid completes, the rows are re-read and
//!   condensed into per-(scenario, algo) [`AggregateResult`]s
//!   (mean/median/std/CI of `best_yield`, simulation statistics, cache
//!   hit-rates), the schema-v4 records the CI baseline gate compares.

pub use crate::jobspec::{EngineReuse, JobSpec};

use crate::exec::{drive_schedule, CellOutcome};
use crate::harness::{Algo, BudgetClass, RunSpec};
use crate::results::{
    aggregate_rows, fmt_f64, parse_flat_json, AggregateResult, JsonRecord, ScenarioResult,
};
use crate::schedule::{Cell, ScheduleOutcome};
use crate::EngineKind;
use moheco_obs::Tracer;
use moheco_runtime::{EngineCacheUsage, EngineConfig, EngineStatsSnapshot, EvalEngine};
use moheco_sampling::{EstimatorKind, SamplingPlan};
use moheco_scenarios::Scenario;
use std::cell::RefCell;
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Cost accounting of one cell executed in this invocation (resumed cells
/// ran in an earlier process and consumed nothing here).
#[derive(Debug, Clone)]
pub struct CellCost {
    /// Scenario name of the cell.
    pub scenario: String,
    /// Algorithm label of the cell.
    pub algo: String,
    /// Seed of the cell.
    pub seed: u64,
    /// Engine counters of the cell (counters are reset before every cell, so
    /// these are per-cell even under [`EngineReuse::SharedCache`]).
    pub engine_stats: EngineStatsSnapshot,
    /// Wall-clock time of the cell in milliseconds. Timing — report it, but
    /// never gate or digest on it.
    pub wall_time_ms: f64,
}

/// What [`run_campaign`] did and found.
#[derive(Debug)]
pub struct CampaignReport {
    /// Cells skipped because their row was already on disk.
    pub resumed: usize,
    /// Cells executed in this invocation.
    pub executed: usize,
    /// Per-(scenario, algo) aggregates over the complete grid, in first-seen
    /// row order.
    pub aggregates: Vec<AggregateResult>,
    /// Per-cell costs of the cells executed in this invocation, in execution
    /// order.
    pub cell_costs: Vec<CellCost>,
    /// Final cache footprint of every pool engine (per-scenario breakdown
    /// plus implied totals), captured after the last cell so quota and
    /// bound enforcement are observable in `--metrics-out`.
    pub engine_cache: Vec<EngineCacheUsage>,
    /// What the campaign scheduler did: rounds, cells, gated groups, and
    /// seeds saved relative to the full rectangle.
    pub schedule: ScheduleOutcome,
}

impl CampaignReport {
    /// Engine counters summed over the cells executed in this invocation
    /// (`max_batch_samples` takes the maximum — it is a high-water mark, not
    /// a count). This is the snapshot the campaign's Prometheus exposition
    /// renders.
    pub fn total_engine_stats(&self) -> EngineStatsSnapshot {
        let mut total = EngineStatsSnapshot::default();
        for cell in &self.cell_costs {
            total.absorb(&cell.engine_stats);
        }
        total
    }
}

/// Long-lived per-scenario engines with the between-cell preparation policy.
///
/// One engine must never be shared across *scenarios*: the cache keys blocks
/// by the design point, and two scenarios of equal dimension could alias the
/// same key to different simulation models. Scenario name → engine is the
/// safe granularity (the estimator and bound are fixed per campaign).
pub struct CampaignEngines {
    kind: EngineKind,
    estimator: EstimatorKind,
    max_cached_blocks: usize,
    reuse: EngineReuse,
    engines: HashMap<String, Arc<dyn EvalEngine>>,
}

impl CampaignEngines {
    /// Creates the (empty) engine pool.
    pub fn new(
        kind: EngineKind,
        estimator: EstimatorKind,
        max_cached_blocks: usize,
        reuse: EngineReuse,
    ) -> Self {
        Self {
            kind,
            estimator,
            max_cached_blocks,
            reuse,
            engines: HashMap::new(),
        }
    }

    /// The engine pool matching a job's engine settings.
    pub fn for_spec(spec: &JobSpec) -> Self {
        Self::new(
            spec.engine,
            spec.estimator,
            spec.max_cached_blocks,
            spec.reuse,
        )
    }

    /// Returns the scenario's engine, prepared for a cell with `seed`:
    /// reseeded, and reset according to the reuse policy.
    pub fn prepare(&mut self, scenario: &str, seed: u64) -> Arc<dyn EvalEngine> {
        let engine = self
            .engines
            .entry(scenario.to_string())
            .or_insert_with(|| {
                self.kind.build_with(EngineConfig {
                    plan: SamplingPlan::LatinHypercube,
                    seed,
                    estimator: self.estimator,
                    max_cached_blocks: self.max_cached_blocks,
                    ..EngineConfig::default()
                })
            })
            .clone();
        engine.reseed(seed);
        match self.reuse {
            EngineReuse::Reset => engine.reset(),
            EngineReuse::SharedCache => engine.reset_counters(),
        }
        engine
    }

    /// Total cache memory currently retained across all engines (bytes).
    pub fn cache_bytes(&self) -> usize {
        self.engines.values().map(|e| e.cache_bytes()).sum()
    }

    /// Total cache blocks currently retained across all engines.
    pub fn cache_blocks(&self) -> usize {
        self.engines.values().map(|e| e.cache_blocks()).sum()
    }

    /// Per-engine cache footprint, sorted by scenario name (deterministic).
    pub fn usage(&self) -> Vec<EngineCacheUsage> {
        let mut usage: Vec<EngineCacheUsage> = self
            .engines
            .iter()
            .map(|(name, e)| EngineCacheUsage {
                label: name.clone(),
                blocks: e.cache_blocks(),
                bytes: e.cache_bytes(),
            })
            .collect();
        usage.sort_by(|a, b| a.label.cmp(&b.label));
        usage
    }
}

/// The sidecar path pinning a campaign file's spec fingerprint.
fn spec_path(jsonl_path: &Path) -> PathBuf {
    let mut name = jsonl_path.as_os_str().to_os_string();
    name.push(".spec");
    PathBuf::from(name)
}

/// An existing campaign JSONL file, read once.
struct ExistingFile {
    /// The parsed, identity-checked complete rows.
    rows: Vec<JsonRecord>,
    /// The file content up to (and including) the last newline.
    complete_text: String,
    /// Whether bytes follow the last newline (a torn mid-write tail).
    torn_tail: bool,
}

/// Reads the resumable rows of an existing campaign JSONL file (one read):
/// complete, parsable lines whose fixed identity matches the spec. A
/// trailing partial line (mid-write kill) is flagged for truncation; a
/// *mismatched* complete row is an error, because silently mixing two
/// campaigns' rows in one file would corrupt the aggregates. Returns `None`
/// when the file does not exist.
fn read_existing_rows(path: &Path, spec: &JobSpec) -> Result<Option<ExistingFile>, String> {
    let mut text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    let complete_through = text.rfind('\n').map(|i| i + 1).unwrap_or(0);
    let torn_tail = complete_through < text.len();
    // Every row of one file shares these; a mismatch means the file belongs
    // to a different campaign.
    let expect: [(&str, String); 4] = [
        ("schema_version", crate::results::SCHEMA_VERSION.to_string()),
        ("engine", spec.engine.label().to_string()),
        ("estimator", spec.estimator.label().to_string()),
        ("prescreen", spec.prescreen.label().to_string()),
    ];
    // The budget is set-valued: a shrinking schedule legitimately writes
    // rows at every rung of the spec's ladder into one file.
    let ladder: Vec<String> = spec
        .budget_ladder()
        .iter()
        .map(|b| b.label().to_string())
        .collect();
    let mut rows = Vec::new();
    for (lineno, line) in text[..complete_through].lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let row =
            parse_flat_json(line).map_err(|e| format!("{}:{}: {e}", path.display(), lineno + 1))?;
        for (field, want) in &expect {
            let got = row
                .str(field)
                .map(str::to_string)
                .or_else(|| row.num(field).map(|v| format!("{v}")));
            if got.as_deref() != Some(want.as_str()) {
                return Err(format!(
                    "{}:{}: row {field} is {got:?} but this campaign runs {want:?} — refusing to mix campaigns in one file",
                    path.display(),
                    lineno + 1
                ));
            }
        }
        let budget = row.str("budget").map(str::to_string);
        if !budget
            .as_deref()
            .is_some_and(|b| ladder.iter().any(|l| l == b))
        {
            return Err(format!(
                "{}:{}: row budget is {budget:?} but this campaign runs {ladder:?} — refusing to mix campaigns in one file",
                path.display(),
                lineno + 1
            ));
        }
        rows.push(row);
    }
    text.truncate(complete_through);
    Ok(Some(ExistingFile {
        rows,
        complete_text: text,
        torn_tail,
    }))
}

/// Verifies (or, for a fresh campaign, writes) the sidecar spec fingerprint
/// next to the JSONL file. The rows themselves carry most of the identity,
/// but the reuse mode and cache bound shape the counters without appearing
/// in any row — resuming under different settings would silently mix
/// counter regimes in one aggregate, which is exactly what this rejects.
fn check_spec_fingerprint(jsonl_path: &Path, spec: &JobSpec, has_rows: bool) -> Result<(), String> {
    let path = spec_path(jsonl_path);
    let fingerprint = spec.fingerprint();
    match std::fs::read_to_string(&path) {
        Ok(existing) if existing == fingerprint => Ok(()),
        Ok(existing) => Err(format!(
            "{}: campaign spec changed — file was written with\n  {}but this invocation runs\n  {}refusing to mix counter regimes in one file",
            path.display(),
            existing,
            fingerprint
        )),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            if has_rows {
                return Err(format!(
                    "{}: campaign rows exist but the spec fingerprint {} is missing; re-run in a fresh --jsonl location",
                    jsonl_path.display(),
                    path.display()
                ));
            }
            std::fs::write(&path, fingerprint)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))
        }
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

/// The resumable JSONL cell sink shared by `moheco-campaign` and the
/// `moheco-serve` job executor — the whole torn-write/resume protocol in
/// one place.
///
/// Opening a writer (1) creates the parent directories, (2) reads and
/// identity-checks any rows already on disk, (3) verifies or writes the
/// sidecar spec fingerprint, and (4) truncates a torn trailing line left by
/// a mid-write kill. Afterwards [`CellWriter::is_done`] answers whether a
/// cell's row is already on disk and [`CellWriter::append`] streams one
/// flushed row per completed cell.
pub struct CellWriter {
    path: PathBuf,
    file: std::fs::File,
    /// `(best_yield, simulations)` per completed cell, keyed by the full
    /// cell identity including its budget class — the observations an
    /// adaptive scheduler replays its decisions from when rows come off
    /// disk.
    stats: HashMap<(String, String, u64, BudgetClass), (f64, f64)>,
}

impl CellWriter {
    /// Opens (or creates) the campaign file for `spec`, enforcing the
    /// fingerprint/resume protocol described above.
    pub fn open(jsonl_path: &Path, spec: &JobSpec) -> Result<Self, String> {
        if let Some(parent) = jsonl_path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
            }
        }
        let existing = read_existing_rows(jsonl_path, spec)?;
        check_spec_fingerprint(
            jsonl_path,
            spec,
            existing.as_ref().is_some_and(|e| !e.rows.is_empty()),
        )?;
        let mut stats: HashMap<(String, String, u64, BudgetClass), (f64, f64)> = HashMap::new();
        let file = match existing {
            None => std::fs::File::create(jsonl_path)
                .map_err(|e| format!("cannot create {}: {e}", jsonl_path.display()))?,
            Some(ex) => {
                for row in &ex.rows {
                    // The budget label was identity-checked against the
                    // spec's ladder, so it always parses.
                    let Some(budget) = row.str("budget").and_then(BudgetClass::parse) else {
                        continue;
                    };
                    let key = (
                        row.str("scenario").unwrap_or_default().to_string(),
                        row.str("algo").unwrap_or_default().to_string(),
                        row.num("seed").unwrap_or(-1.0) as u64,
                        budget,
                    );
                    if let Some(y) = row.num("best_yield") {
                        stats.insert(key, (y, row.num("simulations").unwrap_or(0.0)));
                    }
                }
                // Drop a torn trailing line (mid-write kill) by re-writing
                // the complete prefix already in memory; an intact file is
                // opened for append untouched.
                if ex.torn_tail {
                    std::fs::write(jsonl_path, &ex.complete_text)
                        .map_err(|e| format!("cannot truncate {}: {e}", jsonl_path.display()))?;
                }
                std::fs::OpenOptions::new()
                    .append(true)
                    .open(jsonl_path)
                    .map_err(|e| format!("cannot append to {}: {e}", jsonl_path.display()))?
            }
        };
        Ok(Self {
            path: jsonl_path.to_path_buf(),
            file,
            stats,
        })
    }

    /// Whether this cell's row is already on disk.
    pub fn is_done(&self, scenario: &str, algo: &str, seed: u64, budget: BudgetClass) -> bool {
        self.stats
            .contains_key(&(scenario.to_string(), algo.to_string(), seed, budget))
    }

    /// The `(best_yield, simulations)` of a completed cell (on disk at
    /// open, or appended since), if any.
    pub fn row_stats(
        &self,
        scenario: &str,
        algo: &str,
        seed: u64,
        budget: BudgetClass,
    ) -> Option<(f64, f64)> {
        self.stats
            .get(&(scenario.to_string(), algo.to_string(), seed, budget))
            .copied()
    }

    /// The `best_yield` of a completed cell, if any.
    pub fn best_yield(
        &self,
        scenario: &str,
        algo: &str,
        seed: u64,
        budget: BudgetClass,
    ) -> Option<f64> {
        self.row_stats(scenario, algo, seed, budget).map(|(y, _)| y)
    }

    /// Number of identity-checked rows that were on disk at open time.
    pub fn resumed_rows(&self) -> usize {
        self.stats.len()
    }

    /// Appends one cell row and flushes it to disk (the row *is* the commit
    /// point of the resume protocol).
    pub fn append(&mut self, result: &ScenarioResult) -> Result<(), String> {
        let budget = BudgetClass::parse(&result.budget)
            .ok_or_else(|| format!("unknown budget class {:?} in result row", result.budget))?;
        self.file
            .write_all(result.to_jsonl_row().as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| format!("cannot append to {}: {e}", self.path.display()))?;
        let key = (
            result.scenario.clone(),
            result.algo.clone(),
            result.seed,
            budget,
        );
        self.stats
            .insert(key, (result.best_yield, result.simulations as f64));
        Ok(())
    }
}

/// Executes the campaign grid, streaming one JSONL row per completed cell to
/// `jsonl_path` and skipping cells whose rows are already on disk.
///
/// `progress` receives one human-readable line per cell (executed or
/// skipped) for the caller's log.
///
/// # Errors
///
/// Returns a message on I/O failures, on an invalid spec, or when
/// `jsonl_path` holds rows of a different campaign spec.
pub fn run_campaign(
    spec: &JobSpec,
    jsonl_path: &Path,
    progress: impl FnMut(&str),
) -> Result<CampaignReport, String> {
    run_campaign_traced(spec, jsonl_path, &Tracer::disabled(), progress)
}

/// [`run_campaign`] under a span tracer: every cell runs traced (the probe is
/// re-pointed at the cell's engine, so a campaign-wide [`Tracer::breakdown`]
/// aggregates phase attribution across all executed cells), and one live
/// `campaign_cell` event is emitted per completed cell with its cost fields
/// (`wall_time_ms` last, per the timing-segregation rule). The tracer never
/// touches the search RNG — rows are bit-identical with tracing on or off.
pub fn run_campaign_traced(
    spec: &JobSpec,
    jsonl_path: &Path,
    tracer: &Tracer,
    mut progress: impl FnMut(&str),
) -> Result<CampaignReport, String> {
    spec.validate()?;
    let scenarios = spec.resolve_scenarios()?;
    let by_name: HashMap<&str, &Arc<dyn Scenario>> =
        scenarios.iter().map(|s| (s.name(), s)).collect();
    let algo_by_label: HashMap<&str, Algo> = spec.algos.iter().map(|a| (a.label(), *a)).collect();
    let writer = CellWriter::open(jsonl_path, spec)?;
    // The scheduler driver resolves every cell through two closures that
    // share the engine pool, the cost log, and the progress sink — hence
    // the `RefCell`s (the driver itself is single-threaded).
    let engines = RefCell::new(CampaignEngines::for_spec(spec));
    let cell_costs: RefCell<Vec<CellCost>> = RefCell::new(Vec::new());
    let progress = RefCell::new(&mut progress);
    let execute = |cell: &Cell| -> Result<ScenarioResult, String> {
        let scenario = by_name
            .get(cell.scenario.as_str())
            .ok_or_else(|| format!("scheduler produced unknown scenario {:?}", cell.scenario))?;
        let algo = *algo_by_label
            .get(cell.algo.as_str())
            .ok_or_else(|| format!("scheduler produced unknown algo {:?}", cell.algo))?;
        let engine = engines.borrow_mut().prepare(scenario.name(), cell.seed);
        Ok(RunSpec::new(scenario.as_ref(), algo)
            .budget(cell.budget)
            .seed(cell.seed)
            .engine(engine)
            .engine_label(spec.engine.label())
            .prescreen(spec.prescreen)
            .tracer(tracer)
            .execute())
    };
    let on_cell = |cell: &Cell, outcome: CellOutcome| -> Result<(), String> {
        match outcome {
            CellOutcome::Resumed { .. } => (progress.borrow_mut())(&format!(
                "{}/{}/seed {}: already on disk, skipped",
                cell.scenario, cell.algo, cell.seed
            )),
            CellOutcome::Executed(result) => {
                cell_costs.borrow_mut().push(CellCost {
                    scenario: cell.scenario.clone(),
                    algo: cell.algo.clone(),
                    seed: cell.seed,
                    engine_stats: result.engine_stats,
                    wall_time_ms: result.wall_time_ms,
                });
                tracer.emit(
                    "campaign_cell",
                    &[
                        ("scenario", cell.scenario.clone()),
                        ("algo", cell.algo.clone()),
                        ("seed", cell.seed.to_string()),
                        ("budget", cell.budget.label().to_string()),
                        ("best_yield", fmt_f64(result.best_yield)),
                        ("simulations", result.simulations.to_string()),
                        ("cache_hit_rate", fmt_f64(result.engine_stats.hit_rate())),
                        ("wall_time_ms", fmt_f64(result.wall_time_ms)),
                    ],
                );
                let engines = engines.borrow();
                (progress.borrow_mut())(&format!(
                    "{}/{}/seed {}: yield {:.4} sims {} ({:.0} ms, cache {} blocks / {:.1} MiB)",
                    cell.scenario,
                    cell.algo,
                    cell.seed,
                    result.best_yield,
                    result.simulations,
                    result.wall_time_ms,
                    engines.cache_blocks(),
                    engines.cache_bytes() as f64 / (1024.0 * 1024.0),
                ));
            }
        }
        Ok(())
    };
    let schedule = drive_schedule(spec, writer, tracer, execute, on_cell)?;
    let resumed = schedule.resumed;
    let executed = schedule.executed;
    let cell_costs = cell_costs.into_inner();
    let engines = engines.into_inner();
    let progress = progress.into_inner();

    // Aggregates are computed from the rows on disk — the same source a
    // resumed campaign sees — so fresh and resumed runs emit byte-identical
    // aggregate records. Only rows of the *requested* grid participate: a
    // file written by a wider earlier invocation (more seeds, more
    // scenarios) resumes fine, but its stale cells must not leak into this
    // campaign's aggregates — e.g. regenerating 3-seed baselines over a
    // 5-seed file would otherwise silently commit 5-seed aggregates.
    let requested = spec.cell_set();
    let rows = read_existing_rows(jsonl_path, spec)?
        .map(|e| e.rows)
        .unwrap_or_default();
    let total_rows = rows.len();
    let rows: Vec<JsonRecord> = rows
        .into_iter()
        .filter(|row| {
            requested.contains(&(
                row.str("scenario").unwrap_or_default().to_string(),
                row.str("algo").unwrap_or_default().to_string(),
                row.num("seed").unwrap_or(-1.0) as u64,
            ))
        })
        .collect();
    if rows.len() < total_rows {
        progress(&format!(
            "{} row(s) on disk lie outside the requested grid and are excluded from the aggregates",
            total_rows - rows.len()
        ));
    }
    // Under a shrinking schedule, each (scenario, algo) group aggregates
    // only at its final budget class — the most expensive rung present in
    // its rows, the same rule the scheduler's outcome accounting uses.
    // Cheaper pilot rows informed the schedule but must not pool with
    // full-budget rows in one mean.
    let rows = if spec.budget_ladder().len() > 1 {
        let mut final_rung: HashMap<(String, String), usize> = HashMap::new();
        let rung_of = |row: &JsonRecord| {
            row.str("budget")
                .and_then(BudgetClass::parse)
                .map(|b| b.rung())
                .unwrap_or(0)
        };
        let group_of = |row: &JsonRecord| {
            (
                row.str("scenario").unwrap_or_default().to_string(),
                row.str("algo").unwrap_or_default().to_string(),
            )
        };
        for row in &rows {
            let rung = rung_of(row);
            let entry = final_rung.entry(group_of(row)).or_insert(rung);
            *entry = (*entry).max(rung);
        }
        let before = rows.len();
        let rows: Vec<JsonRecord> = rows
            .into_iter()
            .filter(|row| final_rung.get(&group_of(row)) == Some(&rung_of(row)))
            .collect();
        if rows.len() < before {
            progress(&format!(
                "{} pilot row(s) below their group's final budget class are excluded from the aggregates",
                before - rows.len()
            ));
        }
        rows
    } else {
        rows
    };
    let aggregates = aggregate_rows(&rows)?;
    Ok(CampaignReport {
        resumed,
        executed,
        aggregates,
        cell_costs,
        engine_cache: engines.usage(),
        schedule,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Algo, BudgetClass};
    use moheco::PrescreenKind;

    fn tiny_spec(scenario: &str) -> JobSpec {
        JobSpec {
            scenarios: vec![scenario.to_string()],
            algos: vec![Algo::TwoStage],
            budget: BudgetClass::Tiny,
            seeds: vec![1, 2, 3],
            engine: EngineKind::Serial,
            estimator: EstimatorKind::default(),
            prescreen: PrescreenKind::Off,
            reuse: EngineReuse::Reset,
            max_cached_blocks: 0,
            schedule: crate::jobspec::ScheduleKind::Fixed,
        }
    }

    #[test]
    fn campaign_streams_rows_and_aggregates() {
        let dir = std::env::temp_dir().join("moheco-campaign-test-basic");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.jsonl");
        let spec = tiny_spec("margin_wall");
        let report = run_campaign(&spec, &path, |_| {}).expect("campaign runs");
        assert_eq!(report.executed, 3);
        assert_eq!(report.resumed, 0);
        assert_eq!(report.aggregates.len(), 1);
        let agg = &report.aggregates[0];
        assert_eq!(agg.scenario, "margin_wall");
        assert_eq!(agg.seeds, vec![1, 2, 3]);
        assert_eq!(agg.best_yield.runs, 3);
        assert!(agg.best_yield.std_dev() >= 0.0);
        // The final pool breakdown names the scenario's engine.
        assert_eq!(report.engine_cache.len(), 1);
        assert_eq!(report.engine_cache[0].label, "margin_wall");
        // Rows are on disk, one complete line per cell.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        // Re-running the identical spec resumes everything and re-emits the
        // exact same aggregates.
        let again = run_campaign(&spec, &path, |_| {}).expect("resume");
        assert_eq!(again.executed, 0);
        assert_eq!(again.resumed, 3);
        assert_eq!(again.aggregates[0].to_json(), agg.to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mixed_campaign_files_are_rejected() {
        let dir = std::env::temp_dir().join("moheco-campaign-test-mixed");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.jsonl");
        let spec = tiny_spec("margin_wall");
        run_campaign(&spec, &path, |_| {}).expect("campaign runs");
        let mut other = tiny_spec("margin_wall");
        other.budget = BudgetClass::Small;
        let err = run_campaign(&other, &path, |_| {}).unwrap_err();
        assert!(err.contains("refusing to mix"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_rows_outside_the_requested_grid_are_excluded_from_aggregates() {
        // A 3-seed campaign file resumed by a 2-seed invocation must emit
        // 2-seed aggregates — the stale seed-3 rows stay on disk but never
        // leak into the written baselines.
        let dir = std::env::temp_dir().join("moheco-campaign-test-subset");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.jsonl");
        run_campaign(&tiny_spec("margin_wall"), &path, |_| {}).expect("3-seed campaign");
        let mut narrower = tiny_spec("margin_wall");
        narrower.seeds = vec![1, 2];
        let mut excluded_note = false;
        let report = run_campaign(&narrower, &path, |line| {
            excluded_note |= line.contains("outside the requested grid");
        })
        .expect("2-seed resume");
        assert_eq!(report.executed, 0);
        assert_eq!(report.resumed, 2);
        assert!(excluded_note, "exclusion must be reported");
        assert_eq!(report.aggregates.len(), 1);
        assert_eq!(report.aggregates[0].seeds, vec![1, 2]);
        assert_eq!(report.aggregates[0].best_yield.runs, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn counter_regime_changes_are_rejected_on_resume() {
        // The reuse mode and cache bound shape the row counters without
        // appearing in any row; the sidecar fingerprint must catch both.
        let dir = std::env::temp_dir().join("moheco-campaign-test-regime");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.jsonl");
        run_campaign(&tiny_spec("margin_wall"), &path, |_| {}).expect("campaign runs");

        let mut shared = tiny_spec("margin_wall");
        shared.reuse = EngineReuse::SharedCache;
        let err = run_campaign(&shared, &path, |_| {}).unwrap_err();
        assert!(err.contains("spec changed"), "{err}");

        let mut bounded = tiny_spec("margin_wall");
        bounded.max_cached_blocks = 4;
        let err = run_campaign(&bounded, &path, |_| {}).unwrap_err();
        assert!(err.contains("spec changed"), "{err}");

        // Rows without a fingerprint (e.g. a hand-assembled file) are
        // refused too: the counter regime cannot be established.
        std::fs::remove_file(path.with_extension("jsonl.spec")).unwrap();
        let err = run_campaign(&tiny_spec("margin_wall"), &path, |_| {}).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_specs_are_rejected_before_touching_disk() {
        let dir = std::env::temp_dir().join("moheco-campaign-test-invalid");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("campaign.jsonl");
        let mut spec = tiny_spec("margin_wall");
        spec.seeds.clear();
        let err = run_campaign(&spec, &path, |_| {}).unwrap_err();
        assert!(err.contains("no seeds"), "{err}");
        assert!(!path.exists(), "invalid spec must not create files");
    }
}
