//! `moheco-bench` — experiment harness shared by the table/figure binaries
//! and the Criterion benchmarks.
//!
//! Every binary accepts `--paper` to switch from the fast, scaled-down
//! default settings to the paper's full-scale settings (population 50,
//! `n_max = 500`, 10 independent runs, 50 000-sample reference yields).
//! The measured outputs are recorded in `EXPERIMENTS.md`.

#![warn(missing_docs)]

pub mod campaign;
pub mod cli;
pub mod exec;
pub mod harness;
pub mod jobspec;
pub mod results;
pub mod schedule;

pub use campaign::{run_campaign, CampaignEngines, CampaignReport, CellWriter};
pub use cli::CliArgs;
pub use exec::{drive_schedule, CellOutcome, ExecutionCore};
pub use harness::{Algo, BudgetClass, RunSpec};
pub use jobspec::{EngineReuse, JobSpec, ScheduleKind};
pub use schedule::{
    scheduler_for, CampaignScheduler, Cell, FixedGrid, GroupOutcome, OcbaSchedule, ScheduleOutcome,
};

use moheco::{CircuitBench, MohecoConfig, RunResult, RunSummary, YieldOptimizer, YieldProblem};
use moheco_analog::Testbench;
use moheco_optim::problem::{Evaluation, Problem};
use moheco_runtime::{EngineConfig, EvalEngine, ParallelEngine, SerialEngine, SimulationModel};
use moheco_sampling::{EstimatorKind, SamplingPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Which evaluation engine the experiment binaries dispatch simulations
/// through (`--parallel` on the command line selects the work-stealing
/// engine; results are bit-identical either way, see `moheco-runtime`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// In-order dispatch on the calling thread.
    #[default]
    Serial,
    /// Work-stealing dispatch over all available cores.
    Parallel,
}

impl EngineKind {
    /// Builds a fresh engine of this kind with the default configuration
    /// (LHS sampling, default master seed, plain Monte-Carlo estimator).
    pub fn build(self) -> Arc<dyn EvalEngine> {
        self.build_seeded(EngineConfig::default().seed)
    }

    /// Builds a fresh engine of this kind with an explicit master seed.
    ///
    /// Independent experiment repetitions must use distinct seeds so their
    /// Monte-Carlo sample streams are independent — otherwise the multi-run
    /// statistics of Tables 1-4 would understate the estimator variance.
    pub fn build_seeded(self, seed: u64) -> Arc<dyn EvalEngine> {
        self.build_configured(seed, EstimatorKind::default())
    }

    /// [`Self::build_seeded`] with an explicit variance-reduction estimator
    /// (`moheco-run --estimator`).
    pub fn build_configured(self, seed: u64, estimator: EstimatorKind) -> Arc<dyn EvalEngine> {
        self.build_with(EngineConfig {
            plan: SamplingPlan::LatinHypercube,
            seed,
            estimator,
            ..EngineConfig::default()
        })
    }

    /// Builds a fresh engine of this kind from an explicit configuration
    /// (the campaign layer threads `max_cached_blocks` through this).
    pub fn build_with(self, config: EngineConfig) -> Arc<dyn EvalEngine> {
        match self {
            Self::Serial => Arc::new(SerialEngine::new(config)),
            Self::Parallel => Arc::new(ParallelEngine::new(config)),
        }
    }

    /// The stable label used in results (`serial` / `parallel`).
    pub fn label(&self) -> &'static str {
        match self {
            Self::Serial => "serial",
            Self::Parallel => "parallel",
        }
    }
}

/// The methods compared in Tables 1–4 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `AS + LHS` with a fixed number of simulations per feasible candidate.
    FixedBudget(usize),
    /// `OO + AS + LHS`: two-stage estimation without the memetic operator.
    OoOnly,
    /// Full MOHECO: two-stage estimation plus the memetic DE/NM engine.
    Moheco,
}

impl Method {
    /// Table label of the method.
    pub fn label(&self) -> String {
        match self {
            Method::FixedBudget(n) => format!("{n} simulations (AS+LHS)"),
            Method::OoOnly => "OO+AS+LHS".to_string(),
            Method::Moheco => "MOHECO".to_string(),
        }
    }

    /// Builds the optimizer configuration of this method from a base config.
    pub fn config(&self, base: MohecoConfig) -> MohecoConfig {
        match self {
            Method::FixedBudget(n) => base.as_fixed_budget(*n),
            Method::OoOnly => base.as_oo_without_memetic(),
            Method::Moheco => MohecoConfig {
                memetic_enabled: true,
                strategy: moheco::YieldStrategy::TwoStageOo,
                ..base
            },
        }
    }
}

/// Scale of an experiment: fast (default) or paper-scale (`--paper`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentScale {
    /// Number of independent optimization runs per method.
    pub runs: usize,
    /// Base optimizer configuration.
    pub config: MohecoConfig,
    /// Number of Monte-Carlo samples for the reference ("true") yield.
    pub reference_samples: usize,
    /// Which evaluation engine dispatches the simulations.
    pub engine: EngineKind,
}

impl ExperimentScale {
    /// Fast settings used by default so the binaries finish in minutes.
    pub fn fast() -> Self {
        Self {
            runs: 3,
            config: MohecoConfig::fast(),
            reference_samples: 4_000,
            engine: EngineKind::Serial,
        }
    }

    /// The paper's full-scale settings (10 runs, population 50, 50 000-sample
    /// reference yields).
    pub fn paper() -> Self {
        Self {
            runs: 10,
            config: MohecoConfig::paper(),
            reference_samples: 50_000,
            engine: EngineKind::Serial,
        }
    }

    /// Fixed per-candidate budgets that remain meaningful at this scale: the
    /// paper's 300/500/700 at paper scale, smaller values at fast scale.
    pub fn fixed_budgets(&self) -> Vec<usize> {
        if self.reference_samples >= 50_000 {
            vec![300, 500, 700]
        } else {
            vec![60, 100, 140]
        }
    }
}

/// Per-method outcome over the independent runs.
#[derive(Debug, Clone, Default)]
pub struct MethodOutcome {
    /// Deviation (percentage points) between each run's reported yield and
    /// the reference yield of its final design.
    pub deviations_pp: Vec<f64>,
    /// Total simulation count of each run.
    pub simulations: Vec<f64>,
    /// Reported yield of each run.
    pub reported_yields: Vec<f64>,
    /// Number of generations of each run.
    pub generations: Vec<f64>,
}

impl MethodOutcome {
    /// Summary of the deviations (Tables 1 and 3).
    pub fn deviation_summary(&self) -> RunSummary {
        RunSummary::of(&self.deviations_pp)
    }

    /// Summary of the simulation counts (Tables 2 and 4).
    pub fn simulation_summary(&self) -> RunSummary {
        RunSummary::of(&self.simulations)
    }
}

/// Runs one method `scale.runs` times on `testbench` and collects the table
/// statistics. Seeds are derived from `master_seed` so that every method sees
/// the same sequence of run seeds (paired comparison).
pub fn run_method<T, F>(
    make_testbench: F,
    method: Method,
    scale: &ExperimentScale,
    master_seed: u64,
) -> MethodOutcome
where
    T: Testbench,
    F: Fn() -> T,
{
    let mut outcome = MethodOutcome::default();
    for run in 0..scale.runs {
        let engine_seed = master_seed ^ (run as u64).wrapping_mul(0xD135_2F2D_0785_6A21);
        let problem =
            YieldProblem::with_engine(make_testbench(), scale.engine.build_seeded(engine_seed));
        let optimizer = YieldOptimizer::new(method.config(scale.config));
        let mut rng = StdRng::seed_from_u64(master_seed ^ (run as u64).wrapping_mul(0x9E37_79B9));
        let result = optimizer.run(&problem, &mut rng);
        let mut ref_rng =
            StdRng::seed_from_u64(0xACC0_0000 ^ master_seed ^ (run as u64).wrapping_mul(31));
        let reference =
            problem.reference_yield(&result.best_x, scale.reference_samples, &mut ref_rng);
        outcome
            .deviations_pp
            .push((result.reported_yield - reference).abs() * 100.0);
        outcome.simulations.push(result.total_simulations as f64);
        outcome.reported_yields.push(result.reported_yield);
        outcome.generations.push(result.generations as f64);
    }
    outcome
}

/// Runs a single optimization (used by the Fig. 3 and §3.4 binaries that need
/// a trace rather than multi-run statistics).
pub fn run_single<T: Testbench>(
    testbench: T,
    config: MohecoConfig,
    seed: u64,
) -> (RunResult, YieldProblem<CircuitBench<T>>) {
    run_single_with_engine(testbench, config, seed, EngineKind::Serial)
}

/// [`run_single`] with an explicit engine choice. The run seed also seeds
/// the engine, so different seeds get independent Monte-Carlo sample
/// streams, not just different search trajectories.
pub fn run_single_with_engine<T: Testbench>(
    testbench: T,
    config: MohecoConfig,
    seed: u64,
    engine: EngineKind,
) -> (RunResult, YieldProblem<CircuitBench<T>>) {
    let problem = YieldProblem::with_engine(testbench, engine.build_seeded(seed));
    let optimizer = YieldOptimizer::new(config);
    let mut rng = StdRng::seed_from_u64(seed);
    let result = optimizer.run(&problem, &mut rng);
    (result, problem)
}

/// Prints a deviation table (Tables 1 / 3) for the given methods.
pub fn print_deviation_table(title: &str, rows: &[(Method, &MethodOutcome)]) {
    println!("\n{title}");
    println!(
        "{:<28} {:>12} {:>12} {:>12} {:>12}",
        "method", "best", "worst", "average", "variance"
    );
    for (method, outcome) in rows {
        let s = outcome.deviation_summary();
        println!(
            "{:<28} {:>11.3}% {:>11.3}% {:>11.3}% {:>12.3e}",
            method.label(),
            s.min,
            s.max,
            s.mean,
            s.variance
        );
    }
}

/// Prints a simulation-count table (Tables 2 / 4) for the given methods.
pub fn print_simulation_table(title: &str, rows: &[(Method, &MethodOutcome)]) {
    println!("\n{title}");
    println!(
        "{:<28} {:>12} {:>12} {:>12} {:>12}",
        "method", "best", "worst", "average", "variance"
    );
    for (method, outcome) in rows {
        let s = outcome.simulation_summary();
        println!(
            "{:<28} {:>12.0} {:>12.0} {:>12.0} {:>12.3e}",
            method.label(),
            s.min,
            s.max,
            s.mean,
            s.variance
        );
    }
}

/// Prints the Fig. 6 series (average deviation and average simulation count
/// per method) as CSV so it can be plotted directly.
pub fn print_fig6_csv(rows: &[(Method, &MethodOutcome)]) {
    println!("\n# Fig. 6 series (CSV): method, avg_deviation_pp, avg_simulations");
    for (method, outcome) in rows {
        println!(
            "{},{:.4},{:.0}",
            method.label(),
            outcome.deviation_summary().mean,
            outcome.simulation_summary().mean
        );
    }
}

/// Nominal-only [`SimulationModel`] adapter: the nominal-sizing workload
/// dispatches no Monte-Carlo jobs, only nominal evaluations.
struct NominalModel<T> {
    testbench: T,
}

impl<T: Testbench> SimulationModel for NominalModel<T> {
    fn unit_dimension(&self) -> usize {
        1
    }

    fn simulate_point(&self, _x: &[f64], _u: &[f64]) -> f64 {
        unreachable!("nominal sizing dispatches no Monte-Carlo jobs")
    }

    fn nominal(&self, x: &[f64]) -> Vec<f64> {
        self.testbench.nominal_margins(x)
    }
}

/// A nominal (variation-free) sizing problem over a testbench: minimise the
/// aggregate specification violation at the nominal process point. Used by
/// the `nominal_sizing` binary and the `search_engines` benchmark to
/// reproduce the §3.3 convergence observations.
///
/// Evaluations are dispatched through an [`EvalEngine`], so whole DE/GA
/// generations run as one (optionally parallel) nominal batch and repeated
/// probes of the same sizing are served from the engine cache.
pub struct NominalSizingProblem<T> {
    model: NominalModel<T>,
    engine: Arc<dyn EvalEngine>,
    evaluations: usize,
}

impl<T: Testbench> NominalSizingProblem<T> {
    /// Wraps a testbench, dispatching through a fresh serial engine.
    pub fn new(testbench: T) -> Self {
        Self::with_engine(testbench, EngineKind::Serial.build())
    }

    /// Wraps a testbench with an explicit engine.
    pub fn with_engine(testbench: T, engine: Arc<dyn EvalEngine>) -> Self {
        Self {
            model: NominalModel { testbench },
            engine,
            evaluations: 0,
        }
    }

    /// Number of evaluations requested so far (engine cache hits included).
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    fn margins_to_eval(margins: &[f64]) -> Evaluation {
        let violation: f64 = margins.iter().filter(|&&m| m < 0.0).map(|&m| -m).sum();
        if violation > 0.0 {
            Evaluation::new(violation, violation)
        } else {
            // Feasible: reward extra margin (maximise the worst margin).
            let worst = margins.iter().cloned().fold(f64::INFINITY, f64::min);
            Evaluation::feasible(-worst)
        }
    }
}

impl<T: Testbench> Problem for NominalSizingProblem<T> {
    fn dimension(&self) -> usize {
        self.model.testbench.dimension()
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        self.model.testbench.bounds()
    }

    fn evaluate(&mut self, x: &[f64]) -> Evaluation {
        self.evaluations += 1;
        let margins = self.engine.nominal_single(&self.model, x);
        Self::margins_to_eval(&margins)
    }

    fn evaluate_batch(&mut self, xs: &[Vec<f64>]) -> Vec<Evaluation> {
        self.evaluations += xs.len();
        self.engine
            .nominal_batch(&self.model, xs)
            .into_iter()
            .map(|margins| Self::margins_to_eval(&margins))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moheco_analog::FoldedCascode;

    #[test]
    fn method_labels_and_configs() {
        assert!(Method::FixedBudget(500).label().contains("500"));
        assert_eq!(Method::Moheco.label(), "MOHECO");
        let base = MohecoConfig::fast();
        assert!(!Method::FixedBudget(100).config(base).memetic_enabled);
        assert!(!Method::OoOnly.config(base).memetic_enabled);
        assert!(Method::Moheco.config(base).memetic_enabled);
    }

    #[test]
    fn scales_are_valid() {
        ExperimentScale::fast().config.validate();
        ExperimentScale::paper().config.validate();
        assert_eq!(
            ExperimentScale::paper().fixed_budgets(),
            vec![300, 500, 700]
        );
        assert_eq!(ExperimentScale::fast().fixed_budgets().len(), 3);
    }

    #[test]
    fn nominal_sizing_problem_reports_feasibility() {
        let mut p = NominalSizingProblem::new(FoldedCascode::new());
        let good = p.evaluate(&FoldedCascode::new().reference_design());
        assert!(good.is_feasible());
        let bounds = p.bounds();
        let low: Vec<f64> = bounds.iter().map(|b| b.0).collect();
        let bad = p.evaluate(&low);
        assert!(!bad.is_feasible());
        assert_eq!(p.evaluations(), 2);
    }
}
