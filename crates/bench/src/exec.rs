//! The unified execution core: one scheduler-driven driver shared by
//! `moheco-campaign`, the `moheco-serve` workers, and `schedule-study`.
//!
//! [`ExecutionCore`] owns the whole replay protocol described in
//! [`crate::schedule`]: it cuts allocation rounds from the scheduler,
//! resolves each cell either from rows already on disk or by running it,
//! and commits completions — row append, scheduler-state update, caller
//! callback — **in schedule order**, regardless of how many workers are
//! executing cells concurrently.
//!
//! # In-flight semantics
//!
//! A round is cut **once**, from the committed state, and its cells become
//! slots. Workers claim pending slots in order, execute outside the lock,
//! and post results back; a commit pointer advances over the longest
//! done-prefix, so rows land in the file in the exact order a single-worker
//! run would produce. The next round is cut only when the current round is
//! fully committed (a barrier): scheduler decisions therefore depend only
//! on fully-ordered completions, never on which worker finished first.
//!
//! This gives the multi-worker byte-identity guarantee: under
//! [`crate::EngineReuse::Reset`] each cell's row is a pure function of the
//! cell identity, the round sequence is a pure function of the committed
//! rows, and commits happen in schedule order — so N workers produce the
//! byte-identical JSONL a single worker would. (Under
//! [`crate::EngineReuse::SharedCache`] yields are still identical, but
//! cache-warmth counters depend on execution order, so byte-identity is
//! only guaranteed with one worker.)
//!
//! Two driving modes share the same core:
//!
//! * [`ExecutionCore::run_to_completion`] — the sequential in-process mode
//!   used by [`drive_schedule`]: no locking overhead beyond uncontended
//!   `Mutex::get_mut`, errors propagate verbatim.
//! * [`ExecutionCore::drive`] / [`ExecutionCore::help`] — the concurrent
//!   mode used by the service: any number of workers pull claims from one
//!   allocation loop, coordinated by a condvar; panics in `execute` are
//!   caught and surfaced as job errors.

use crate::campaign::CellWriter;
use crate::jobspec::JobSpec;
use crate::results::ScenarioResult;
use crate::schedule::{scheduler_for, CampaignScheduler, CampaignState, Cell, ScheduleOutcome};
use moheco_obs::{Span, Tracer};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

const POISONED: &str = "execution core poisoned by a panicking commit callback";

/// How the core resolved one scheduled cell, for the caller's per-cell
/// accounting (progress lines, cost records, quota enforcement).
pub enum CellOutcome<'a> {
    /// The cell's row was already on disk and was consumed, not re-run.
    Resumed {
        /// `best_yield` of the on-disk row.
        best_yield: f64,
    },
    /// The cell executed in this invocation; its row has been appended.
    Executed(&'a ScenarioResult),
}

/// How a slot's cell completed.
enum Resolution {
    /// Consumed from a row already on disk.
    Resumed { best_yield: f64, simulations: f64 },
    /// Executed by a worker in this invocation.
    Executed(Box<ScenarioResult>),
}

/// One cell of the current round.
enum Slot {
    /// Not yet claimed by any worker.
    Pending,
    /// Claimed by a worker (or already committed — slots behind the
    /// commit pointer are never inspected again).
    Claimed,
    /// Completed, waiting for the commit pointer to reach it.
    Done(Resolution),
}

/// Everything the lock protects: scheduler state, the row writer, the
/// caller's commit callback, and the current round's slots.
struct CoreInner<C> {
    state: CampaignState,
    writer: CellWriter,
    commit: C,
    tracer: Tracer,
    outcome: ScheduleOutcome,
    round: Vec<Cell>,
    slots: Vec<Slot>,
    committed: usize,
    finished: bool,
    error: Option<String>,
}

/// A scheduler-driven campaign execution: rounds are cut from observed
/// state, cells execute (possibly concurrently), completions commit in
/// schedule order. See the module docs for the full contract.
pub struct ExecutionCore<E, C> {
    scheduler: Box<dyn CampaignScheduler + Send + Sync>,
    execute: E,
    inner: Mutex<CoreInner<C>>,
    progress: Condvar,
}

/// Advances the commit pointer over the longest done-prefix of the round:
/// each committed cell appends its row (if executed), feeds the scheduler
/// state, and fires the caller's commit callback — the exact order the
/// historical sequential driver used.
fn advance_commit<C>(inner: &mut CoreInner<C>) -> Result<(), String>
where
    C: FnMut(&Cell, CellOutcome<'_>) -> Result<(), String>,
{
    while inner.committed < inner.slots.len()
        && matches!(inner.slots[inner.committed], Slot::Done(_))
    {
        let slot = std::mem::replace(&mut inner.slots[inner.committed], Slot::Claimed);
        let Slot::Done(resolution) = slot else {
            unreachable!("the matches! guard admits only done slots");
        };
        let cell = inner.round[inner.committed].clone();
        match resolution {
            Resolution::Resumed {
                best_yield,
                simulations,
            } => {
                inner.outcome.resumed += 1;
                inner.state.record(&cell, best_yield, simulations);
                (inner.commit)(&cell, CellOutcome::Resumed { best_yield })?;
            }
            Resolution::Executed(result) => {
                inner.writer.append(&result)?;
                inner.outcome.executed += 1;
                inner
                    .state
                    .record(&cell, result.best_yield, result.simulations as f64);
                (inner.commit)(&cell, CellOutcome::Executed(&result))?;
            }
        }
        inner.committed += 1;
    }
    Ok(())
}

/// Cuts rounds until one has work left to execute (or the schedule ends):
/// asks the scheduler for the next round, pre-resolves every cell whose
/// row is already on disk, and commits the resolved prefix. A round that
/// resolves entirely from disk commits in full and the loop cuts the next
/// one — so a resumed campaign fast-forwards through its consumed prefix
/// without ever blocking on a worker.
fn cut_rounds<C>(inner: &mut CoreInner<C>, scheduler: &dyn CampaignScheduler) -> Result<(), String>
where
    C: FnMut(&Cell, CellOutcome<'_>) -> Result<(), String>,
{
    loop {
        let round = {
            let _span = Span::enter(&inner.tracer, "campaign/schedule");
            scheduler.next_cells(&inner.state)
        };
        if round.is_empty() {
            inner.finished = true;
            inner.outcome.finalize(&inner.state);
            return Ok(());
        }
        inner.outcome.rounds += 1;
        inner.outcome.scheduled += round.len();
        inner.tracer.emit(
            "campaign_schedule",
            &[
                ("schedule", scheduler.label().to_string()),
                ("round", inner.outcome.rounds.to_string()),
                ("cells", round.len().to_string()),
            ],
        );
        let mut slots = Vec::with_capacity(round.len());
        for cell in &round {
            if inner
                .writer
                .is_done(&cell.scenario, &cell.algo, cell.seed, cell.budget)
            {
                let (best_yield, simulations) = inner
                    .writer
                    .row_stats(&cell.scenario, &cell.algo, cell.seed, cell.budget)
                    .ok_or_else(|| {
                        format!(
                            "{}/{}/seed {}: on-disk row has no best_yield — cannot resume",
                            cell.scenario, cell.algo, cell.seed
                        )
                    })?;
                slots.push(Slot::Done(Resolution::Resumed {
                    best_yield,
                    simulations,
                }));
            } else {
                slots.push(Slot::Pending);
            }
        }
        inner.round = round;
        inner.slots = slots;
        inner.committed = 0;
        advance_commit(inner)?;
        if inner.committed < inner.slots.len() {
            return Ok(());
        }
    }
}

/// Claims the first pending slot at or after the commit pointer.
fn claim<C>(inner: &mut CoreInner<C>) -> Option<(usize, Cell)> {
    for index in inner.committed..inner.slots.len() {
        if matches!(inner.slots[index], Slot::Pending) {
            inner.slots[index] = Slot::Claimed;
            return Some((index, inner.round[index].clone()));
        }
    }
    None
}

impl<E, C> ExecutionCore<E, C> {
    /// The scheduler's stable label (`fixed`, `ocba`, `ocba-shrink`).
    pub fn label(&self) -> &'static str {
        self.scheduler.label()
    }

    fn lock(&self) -> Result<MutexGuard<'_, CoreInner<C>>, String> {
        self.inner.lock().map_err(|_| POISONED.to_string())
    }
}

impl<E, C> ExecutionCore<E, C>
where
    C: FnMut(&Cell, CellOutcome<'_>) -> Result<(), String>,
{
    /// Builds the core for `spec`'s campaign and fast-forwards through the
    /// rows `writer` already holds: when this returns, the current round
    /// is ready for claims (or the campaign is already finished, if every
    /// scheduled cell was on disk).
    ///
    /// `execute` runs one cell and returns its result; `commit` observes
    /// every completed cell (resumed or executed), in schedule order.
    ///
    /// # Errors
    ///
    /// Propagates `commit` errors and writer I/O errors verbatim; fails
    /// when an on-disk row claims completion but carries no statistics.
    pub fn new(
        spec: &JobSpec,
        writer: CellWriter,
        tracer: Tracer,
        execute: E,
        commit: C,
    ) -> Result<Self, String> {
        let scheduler = scheduler_for(spec.schedule);
        let mut inner = CoreInner {
            state: CampaignState::new(spec),
            writer,
            commit,
            tracer,
            outcome: ScheduleOutcome::new(scheduler.label()),
            round: Vec::new(),
            slots: Vec::new(),
            committed: 0,
            finished: false,
            error: None,
        };
        cut_rounds(&mut inner, scheduler.as_ref())?;
        Ok(Self {
            scheduler,
            execute,
            inner: Mutex::new(inner),
            progress: Condvar::new(),
        })
    }
}

impl<E, C> ExecutionCore<E, C>
where
    E: FnMut(&Cell) -> Result<ScenarioResult, String>,
    C: FnMut(&Cell, CellOutcome<'_>) -> Result<(), String>,
{
    /// Runs the whole campaign on the calling thread — the sequential mode
    /// behind [`drive_schedule`]. Errors (and panics) from `execute`
    /// propagate verbatim, exactly like the historical driver.
    pub fn run_to_completion(mut self) -> Result<ScheduleOutcome, String> {
        loop {
            let inner = self.inner.get_mut().map_err(|_| POISONED.to_string())?;
            if inner.finished {
                return Ok(inner.outcome.clone());
            }
            let (index, cell) = claim(inner)
                .ok_or_else(|| "scheduler cut a round with no pending cells".to_string())?;
            let result = (self.execute)(&cell)?;
            let inner = self.inner.get_mut().map_err(|_| POISONED.to_string())?;
            inner.slots[index] = Slot::Done(Resolution::Executed(Box::new(result)));
            advance_commit(inner)?;
            if inner.committed == inner.slots.len() {
                cut_rounds(inner, self.scheduler.as_ref())?;
            }
        }
    }
}

impl<E, C> ExecutionCore<E, C>
where
    E: Fn(&Cell) -> Result<ScenarioResult, String> + Sync,
    C: FnMut(&Cell, CellOutcome<'_>) -> Result<(), String> + Send,
{
    /// Drives the campaign to completion, executing cells on the calling
    /// thread whenever one is claimable and waiting on the round barrier
    /// otherwise. Any number of threads may call `drive` (and
    /// [`ExecutionCore::help`]) on the same core; the first error wins and
    /// every driver returns it.
    pub fn drive(&self) -> Result<ScheduleOutcome, String> {
        let mut inner = self.lock()?;
        loop {
            if let Some(err) = &inner.error {
                return Err(err.clone());
            }
            if inner.finished {
                return Ok(inner.outcome.clone());
            }
            if let Some((index, cell)) = claim(&mut inner) {
                drop(inner);
                self.execute_claimed(index, &cell);
                inner = self.lock()?;
            } else {
                inner = self
                    .progress
                    .wait(inner)
                    .map_err(|_| POISONED.to_string())?;
            }
        }
    }

    /// Executes at most one claimable cell — the idle-worker mode: a
    /// worker with no job of its own lends a hand to another job's core.
    /// Waits up to `patience` for a claim to appear before giving up.
    /// Returns whether a cell was executed.
    pub fn help(&self, patience: Duration) -> Result<bool, String> {
        let mut inner = self.lock()?;
        for attempt in 0..2 {
            if inner.finished || inner.error.is_some() {
                return Ok(false);
            }
            if let Some((index, cell)) = claim(&mut inner) {
                drop(inner);
                self.execute_claimed(index, &cell);
                return Ok(true);
            }
            if attempt == 0 {
                inner = self
                    .progress
                    .wait_timeout(inner, patience)
                    .map_err(|_| POISONED.to_string())?
                    .0;
            }
        }
        Ok(false)
    }

    /// Executes one claimed cell outside the lock, posts the result (or
    /// the first error) back, advances the commit pointer, and wakes every
    /// waiting worker.
    fn execute_claimed(&self, index: usize, cell: &Cell) {
        let result = catch_unwind(AssertUnwindSafe(|| (self.execute)(cell)));
        let Ok(mut inner) = self.inner.lock() else {
            // A commit callback panicked in another worker; the job is
            // already dead and every driver will report the poison.
            return;
        };
        match result {
            Ok(Ok(result)) => {
                inner.slots[index] = Slot::Done(Resolution::Executed(Box::new(result)));
                let mut step = advance_commit(&mut inner);
                if step.is_ok() && inner.committed == inner.slots.len() && !inner.finished {
                    step = cut_rounds(&mut inner, self.scheduler.as_ref());
                }
                if let Err(err) = step {
                    inner.error.get_or_insert(err);
                }
            }
            Ok(Err(err)) => {
                inner.error.get_or_insert(err);
            }
            Err(_) => {
                inner.error.get_or_insert(format!(
                    "{}/{}/seed {}: cell execution panicked",
                    cell.scenario, cell.algo, cell.seed
                ));
            }
        }
        drop(inner);
        self.progress.notify_all();
    }
}

/// Runs `spec`'s campaign under its scheduler on the calling thread: asks
/// for rounds of cells, consumes each from disk when its row is already
/// there, executes it via `execute` otherwise, and feeds every completion
/// back into the scheduler state (the replay protocol described in
/// [`crate::schedule`]).
///
/// Each allocation round runs inside a `campaign/schedule` span and emits a
/// live `campaign_schedule` event; the spans attribute no simulations (the
/// allocation itself never simulates), so campaign phase breakdowns still
/// reconcile exactly with the engine counters.
///
/// `execute` runs one cell and returns its result; `on_cell` observes every
/// scheduled cell (resumed or executed), in schedule order.
///
/// # Errors
///
/// Propagates `execute`/`on_cell` errors and writer I/O errors verbatim.
pub fn drive_schedule(
    spec: &JobSpec,
    writer: CellWriter,
    tracer: &Tracer,
    execute: impl FnMut(&Cell) -> Result<ScenarioResult, String>,
    on_cell: impl FnMut(&Cell, CellOutcome<'_>) -> Result<(), String>,
) -> Result<ScheduleOutcome, String> {
    ExecutionCore::new(spec, writer, tracer.clone(), execute, on_cell)?.run_to_completion()
}
