//! Campaign scheduling: which cells run, in what order, and when to stop.
//!
//! The paper's budget-allocation insight — spend replications where the
//! observed variance says they buy information — applied one level up. A
//! campaign is a set of `(scenario, algo)` **groups**, each with a pool of
//! candidate seeds; a [`CampaignScheduler`] decides, round by round, which
//! `(scenario, algo, seed)` cells to run next based on the cross-seed
//! statistics observed so far:
//!
//! * [`FixedGrid`] reproduces the historical behavior exactly: one round
//!   containing the whole remaining rectangle in grid order (scenario
//!   outer, algo middle, seed inner). Bit-identical rows, counters, and
//!   progress order.
//! * [`OcbaSchedule`] treats each group as an OCBA arm
//!   ([`moheco_ocba::Arm`]): after a min-seeds floor it grants further seed
//!   replications by cross-seed variance, and a group stops early once its
//!   95 % CI half-width on the cross-seed mean yield clears the gate
//!   threshold — converged cells stop buying seeds that noisy cells need.
//!
//! # Determinism under resume
//!
//! [`drive_schedule`] rebuilds scheduler state **only** from the rows it
//! consumes, in schedule order. Round 1 is a pure function of the spec;
//! every later round is a pure function of the `(cell, best_yield)` sequence
//! consumed so far. In [`crate::EngineReuse::Reset`] mode each cell's row is
//! a pure function of `(scenario, algo, seed)`, and rows are appended in
//! schedule order — so the rows a killed campaign left on disk are exactly
//! a prefix of the cell sequence the resumed process re-derives. The resumed
//! process consumes that prefix from disk (identical state evolution),
//! reaches the identical next decision, and appends byte-identical remaining
//! rows. No schedule journal is needed; the row log *is* the journal.

use crate::campaign::CellWriter;
use crate::jobspec::{JobSpec, ScheduleKind};
use crate::results::{ScenarioResult, YIELD_TOLERANCE};
use moheco_obs::prometheus::{push_header, push_sample};
use moheco_obs::{Span, Tracer};
use moheco_ocba::{allocate_arm_increment, Arm};

/// One schedulable unit of campaign work.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cell {
    /// Registry name of the scenario.
    pub scenario: String,
    /// Algorithm label.
    pub algo: String,
    /// Master seed of the run.
    pub seed: u64,
}

/// Observed state of one `(scenario, algo)` group: its seed pool and the
/// cross-seed yields completed so far, in completion order.
#[derive(Debug, Clone)]
pub struct GroupState {
    /// Registry name of the scenario.
    pub scenario: String,
    /// Algorithm label.
    pub algo: String,
    /// Candidate seeds, in spec order; the scheduler may use a prefix.
    pub seed_pool: Vec<u64>,
    /// `(seed, best_yield)` of every completed cell, in completion order.
    pub completed: Vec<(u64, f64)>,
}

impl GroupState {
    /// Seeds completed so far.
    pub fn used(&self) -> usize {
        self.completed.len()
    }

    /// Pool seeds not yet completed, in pool order.
    pub fn unused(&self) -> impl Iterator<Item = u64> + '_ {
        self.seed_pool
            .iter()
            .copied()
            .filter(|s| !self.completed.iter().any(|(done, _)| done == s))
    }

    /// Cross-seed mean of `best_yield` (NaN with no completions).
    pub fn mean(&self) -> f64 {
        let n = self.completed.len();
        if n == 0 {
            return f64::NAN;
        }
        self.completed.iter().map(|(_, y)| y).sum::<f64>() / n as f64
    }

    /// Unbiased cross-seed variance of `best_yield` (0 below two
    /// completions).
    pub fn variance(&self) -> f64 {
        let n = self.completed.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        self.completed
            .iter()
            .map(|(_, y)| (y - mean).powi(2))
            .sum::<f64>()
            / (n - 1) as f64
    }

    /// 95 % CI half-width of the cross-seed mean yield, the same
    /// `Z_95 · std / √n` the aggregate records report. Infinite below two
    /// completions — a group can never gate on a single observation.
    pub fn ci_half_width(&self) -> f64 {
        let n = self.completed.len();
        if n < 2 {
            return f64::INFINITY;
        }
        moheco_sampling::Z_95 * self.variance().sqrt() / (n as f64).sqrt()
    }
}

/// Everything a [`CampaignScheduler`] may condition on: the per-group
/// cross-seed observations, with groups in grid order (scenario outer, algo
/// middle).
#[derive(Debug, Clone)]
pub struct CampaignState {
    /// Per-group state, in grid order.
    pub groups: Vec<GroupState>,
}

impl CampaignState {
    /// The initial (empty-observation) state of a spec's grid.
    pub fn new(spec: &JobSpec) -> Self {
        let groups = spec
            .scenarios
            .iter()
            .flat_map(|scenario| {
                spec.algos.iter().map(move |algo| GroupState {
                    scenario: scenario.clone(),
                    algo: algo.label().to_string(),
                    seed_pool: spec.seeds.clone(),
                    completed: Vec::new(),
                })
            })
            .collect();
        Self { groups }
    }

    /// Records one completed cell. Cells outside the grid are ignored.
    pub fn record(&mut self, cell: &Cell, best_yield: f64) {
        if let Some(group) = self
            .groups
            .iter_mut()
            .find(|g| g.scenario == cell.scenario && g.algo == cell.algo)
        {
            if !group.completed.iter().any(|(s, _)| *s == cell.seed) {
                group.completed.push((cell.seed, best_yield));
            }
        }
    }
}

/// A campaign scheduling policy: given the observations so far, the next
/// round of cells to run (empty = campaign complete).
///
/// # Contract
///
/// Implementations must be **pure functions of the state** (no interior
/// mutability, no clocks, no RNG): [`drive_schedule`] relies on this to
/// replay a killed campaign's decisions from its row log. Each non-empty
/// round must contain at least one cell from [`GroupState::unused`] of some
/// group — otherwise the driver could loop forever — and must never repeat
/// a completed cell.
pub trait CampaignScheduler {
    /// The stable label (`fixed`, `ocba`) used in events and metrics.
    fn label(&self) -> &'static str;

    /// The next round of cells, in execution order.
    fn next_cells(&self, state: &CampaignState) -> Vec<Cell>;
}

/// The historical fixed rectangle: one round with every remaining cell in
/// grid order. Bit-identical to the pre-scheduler triple-nested loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedGrid;

impl CampaignScheduler for FixedGrid {
    fn label(&self) -> &'static str {
        "fixed"
    }

    fn next_cells(&self, state: &CampaignState) -> Vec<Cell> {
        state
            .groups
            .iter()
            .flat_map(|g| {
                g.unused().map(|seed| Cell {
                    scenario: g.scenario.clone(),
                    algo: g.algo.clone(),
                    seed,
                })
            })
            .collect()
    }
}

/// OCBA over the campaign grid: seed replications flow to the groups whose
/// cross-seed variance says they need them.
///
/// Round 1 grants every group its floor — `min(min_seeds, pool)` seeds —
/// so no group ever gates on fewer than [`OcbaSchedule::min_seeds`]
/// observations. Afterwards, each round considers the **open** groups
/// (unused seeds remain and the CI half-width still exceeds
/// [`OcbaSchedule::gate_half_width`]), maps each to an OCBA arm
/// (mean/variance = cross-seed statistics, count = seeds used, cap = pool
/// size), and asks [`allocate_arm_increment`] to split a delta of one
/// replication per open group. Converged or exhausted groups receive
/// nothing; the campaign ends when no group is open.
#[derive(Debug, Clone, Copy)]
pub struct OcbaSchedule {
    /// Minimum seeds per group before the gate may stop it.
    pub min_seeds: usize,
    /// CI half-width below which a group is considered converged. The
    /// default is [`YIELD_TOLERANCE`] — once the cross-seed mean is pinned
    /// tighter than the baseline gate's own tolerance, more seeds cannot
    /// change the verdict.
    pub gate_half_width: f64,
}

impl Default for OcbaSchedule {
    fn default() -> Self {
        Self {
            min_seeds: 3,
            gate_half_width: YIELD_TOLERANCE,
        }
    }
}

impl OcbaSchedule {
    /// Whether a group still wants seeds: unused seeds remain, and the CI
    /// half-width has not cleared the gate.
    fn is_open(&self, group: &GroupState) -> bool {
        group.used() < group.seed_pool.len() && group.ci_half_width() > self.gate_half_width
    }
}

impl CampaignScheduler for OcbaSchedule {
    fn label(&self) -> &'static str {
        "ocba"
    }

    fn next_cells(&self, state: &CampaignState) -> Vec<Cell> {
        // Phase A: the floor round. Any group below its floor gets topped
        // up first — statistics on fewer than `min_seeds` seeds are too
        // weak to allocate on (or to gate on).
        let mut floor_cells = Vec::new();
        for group in &state.groups {
            let floor = self.min_seeds.min(group.seed_pool.len());
            if group.used() < floor {
                floor_cells.extend(group.unused().take(floor - group.used()).map(|seed| Cell {
                    scenario: group.scenario.clone(),
                    algo: group.algo.clone(),
                    seed,
                }));
            }
        }
        if !floor_cells.is_empty() {
            return floor_cells;
        }

        // Phase B: OCBA over the open groups, one replication per open
        // group per round. Every open group has `ci_half_width > gate`,
        // which requires a strictly positive variance — so the allocation
        // inputs are always valid, and the delta (= number of open groups)
        // always fits in the open groups' remaining room: each round
        // schedules at least one cell, and the campaign terminates.
        let open: Vec<&GroupState> = state.groups.iter().filter(|g| self.is_open(g)).collect();
        if open.is_empty() {
            return Vec::new();
        }
        let arms: Vec<Arm> = open
            .iter()
            .map(|g| Arm::new(g.mean(), g.variance(), g.used()).with_cap(g.seed_pool.len()))
            .collect();
        let grants = allocate_arm_increment(&arms, open.len())
            // Unreachable with yields in [0, 1] and ≥ 2 observations per
            // open group; the uniform fallback keeps the guarantee that a
            // non-empty open set always makes progress.
            .unwrap_or_else(|_| vec![1; open.len()]);
        open.iter()
            .zip(&grants)
            .flat_map(|(group, &n)| {
                group.unused().take(n).map(|seed| Cell {
                    scenario: group.scenario.clone(),
                    algo: group.algo.clone(),
                    seed,
                })
            })
            .collect()
    }
}

/// The scheduler implementation of a [`ScheduleKind`].
pub fn scheduler_for(kind: ScheduleKind) -> Box<dyn CampaignScheduler> {
    match kind {
        ScheduleKind::Fixed => Box::new(FixedGrid),
        ScheduleKind::Ocba => Box::new(OcbaSchedule::default()),
    }
}

/// What a completed schedule did, for reports and metrics.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// The scheduler's stable label.
    pub label: &'static str,
    /// Allocation rounds taken (number of non-empty `next_cells` calls).
    pub rounds: usize,
    /// Cells the scheduler asked for in total.
    pub scheduled: usize,
    /// Scheduled cells executed in this invocation.
    pub executed: usize,
    /// Scheduled cells consumed from rows already on disk.
    pub resumed: usize,
    /// Groups stopped before exhausting their seed pool (0 under
    /// [`FixedGrid`], which always runs the full rectangle).
    pub groups_gated: usize,
    /// Seeds left unspent across all groups — the campaign-level budget the
    /// scheduler saved.
    pub seeds_saved: usize,
}

impl ScheduleOutcome {
    fn new(label: &'static str) -> Self {
        Self {
            label,
            rounds: 0,
            scheduled: 0,
            executed: 0,
            resumed: 0,
            groups_gated: 0,
            seeds_saved: 0,
        }
    }

    /// Renders the `moheco_schedule_*` metric families in Prometheus text
    /// exposition format, labelled by scheduler.
    pub fn render_prometheus(&self, out: &mut String) {
        let families: [(&str, &str, f64); 6] = [
            (
                "moheco_schedule_rounds_total",
                "Allocation rounds taken by the campaign scheduler.",
                self.rounds as f64,
            ),
            (
                "moheco_schedule_cells_scheduled_total",
                "Cells the campaign scheduler asked for.",
                self.scheduled as f64,
            ),
            (
                "moheco_schedule_cells_executed_total",
                "Scheduled cells executed in this invocation.",
                self.executed as f64,
            ),
            (
                "moheco_schedule_cells_resumed_total",
                "Scheduled cells consumed from rows already on disk.",
                self.resumed as f64,
            ),
            (
                "moheco_schedule_groups_gated_total",
                "Groups stopped before exhausting their seed pool.",
                self.groups_gated as f64,
            ),
            (
                "moheco_schedule_seeds_saved_total",
                "Seeds left unspent across all groups.",
                self.seeds_saved as f64,
            ),
        ];
        for (name, help, value) in families {
            push_header(out, name, "counter", help);
            push_sample(out, name, &[("schedule", self.label)], value);
        }
    }
}

/// How [`drive_schedule`] resolved one scheduled cell, for the caller's
/// per-cell accounting (progress lines, cost records, quota enforcement).
pub enum CellOutcome<'a> {
    /// The cell's row was already on disk and was consumed, not re-run.
    Resumed {
        /// `best_yield` of the on-disk row.
        best_yield: f64,
    },
    /// The cell executed in this invocation; its row has been appended.
    Executed(&'a ScenarioResult),
}

/// Runs `spec`'s campaign under its scheduler: asks for rounds of cells,
/// consumes each from disk when its row is already there, executes it via
/// `execute` otherwise, and feeds every completion back into the scheduler
/// state (the replay protocol described in the module docs).
///
/// Each allocation round runs inside a `campaign/schedule` span and emits a
/// live `campaign_schedule` event; the spans attribute no simulations (the
/// allocation itself never simulates), so campaign phase breakdowns still
/// reconcile exactly with the engine counters.
///
/// `execute` runs one cell and returns its result; `on_cell` observes every
/// scheduled cell (resumed or executed), in schedule order.
///
/// # Errors
///
/// Propagates `execute`/`on_cell` errors and writer I/O errors verbatim.
pub fn drive_schedule(
    spec: &JobSpec,
    writer: &mut CellWriter,
    tracer: &Tracer,
    mut execute: impl FnMut(&Cell) -> Result<ScenarioResult, String>,
    mut on_cell: impl FnMut(&Cell, CellOutcome) -> Result<(), String>,
) -> Result<ScheduleOutcome, String> {
    let scheduler = scheduler_for(spec.schedule);
    let mut state = CampaignState::new(spec);
    let mut outcome = ScheduleOutcome::new(scheduler.label());
    loop {
        let round = {
            let _span = Span::enter(tracer, "campaign/schedule");
            scheduler.next_cells(&state)
        };
        if round.is_empty() {
            break;
        }
        outcome.rounds += 1;
        outcome.scheduled += round.len();
        tracer.emit(
            "campaign_schedule",
            &[
                ("schedule", scheduler.label().to_string()),
                ("round", outcome.rounds.to_string()),
                ("cells", round.len().to_string()),
            ],
        );
        for cell in &round {
            if writer.is_done(&cell.scenario, &cell.algo, cell.seed) {
                let best_yield = writer
                    .best_yield(&cell.scenario, &cell.algo, cell.seed)
                    .ok_or_else(|| {
                        format!(
                            "{}/{}/seed {}: on-disk row has no best_yield — cannot resume",
                            cell.scenario, cell.algo, cell.seed
                        )
                    })?;
                outcome.resumed += 1;
                state.record(cell, best_yield);
                on_cell(cell, CellOutcome::Resumed { best_yield })?;
            } else {
                let result = execute(cell)?;
                writer.append(&result)?;
                outcome.executed += 1;
                state.record(cell, result.best_yield);
                on_cell(cell, CellOutcome::Executed(&result))?;
            }
        }
    }
    outcome.groups_gated = state
        .groups
        .iter()
        .filter(|g| g.used() < g.seed_pool.len())
        .count();
    outcome.seeds_saved = state
        .groups
        .iter()
        .map(|g| g.seed_pool.len() - g.used())
        .sum();
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Algo, BudgetClass};

    fn grid_spec() -> JobSpec {
        JobSpec {
            scenarios: vec!["a".into(), "b".into()],
            algos: vec![Algo::TwoStage, Algo::De],
            budget: BudgetClass::Tiny,
            seeds: vec![1, 2, 3],
            ..JobSpec::default()
        }
    }

    fn record_all(state: &mut CampaignState, cells: &[Cell], yield_of: impl Fn(&Cell) -> f64) {
        for cell in cells {
            let y = yield_of(cell);
            state.record(cell, y);
        }
    }

    #[test]
    fn fixed_grid_is_one_round_in_grid_order() {
        let spec = grid_spec();
        let mut state = CampaignState::new(&spec);
        let round = FixedGrid.next_cells(&state);
        assert_eq!(round.len(), 12);
        // Scenario outer, algo middle, seed inner.
        assert_eq!(
            (
                round[0].scenario.as_str(),
                round[0].algo.as_str(),
                round[0].seed
            ),
            ("a", "two-stage", 1)
        );
        assert_eq!(
            (
                round[3].scenario.as_str(),
                round[3].algo.as_str(),
                round[3].seed
            ),
            ("a", "de", 1)
        );
        assert_eq!(
            (
                round[6].scenario.as_str(),
                round[6].algo.as_str(),
                round[6].seed
            ),
            ("b", "two-stage", 1)
        );
        record_all(&mut state, &round, |_| 0.5);
        assert!(FixedGrid.next_cells(&state).is_empty(), "second round ends");
    }

    #[test]
    fn fixed_grid_resumes_with_the_remaining_rectangle() {
        let spec = grid_spec();
        let mut state = CampaignState::new(&spec);
        let full = FixedGrid.next_cells(&state);
        record_all(&mut state, &full[..5], |_| 0.5);
        let rest = FixedGrid.next_cells(&state);
        assert_eq!(rest, full[5..].to_vec());
    }

    #[test]
    fn ocba_floor_round_covers_every_group() {
        let spec = grid_spec();
        let sched = OcbaSchedule::default();
        let state = CampaignState::new(&spec);
        let round = sched.next_cells(&state);
        // 4 groups × floor 3 = the whole 3-seed pool here.
        assert_eq!(round.len(), 12);
        for group in &state.groups {
            let mine = round
                .iter()
                .filter(|c| c.scenario == group.scenario && c.algo == group.algo)
                .count();
            assert_eq!(mine, 3, "floor seeds for {}/{}", group.scenario, group.algo);
        }
    }

    #[test]
    fn ocba_gates_converged_groups_and_feeds_noisy_ones() {
        let mut spec = grid_spec();
        spec.seeds = (1..=8).collect();
        let sched = OcbaSchedule::default();
        let mut state = CampaignState::new(&spec);
        // Group a/two-stage is noisy (±0.3); everything else is converged
        // (±0.001 across seeds).
        let yield_of = |c: &Cell| {
            let wiggle = if c.scenario == "a" && c.algo == "two-stage" {
                0.3
            } else {
                0.001
            };
            0.5 + wiggle * (c.seed as f64 - 2.0)
        };
        let floor = sched.next_cells(&state);
        assert_eq!(floor.len(), 12, "floor: 4 groups x 3 seeds");
        record_all(&mut state, &floor, yield_of);
        let round = sched.next_cells(&state);
        assert!(!round.is_empty());
        assert!(
            round
                .iter()
                .all(|c| c.scenario == "a" && c.algo == "two-stage"),
            "only the noisy group stays open: {round:?}"
        );
        // Run the campaign dry: it must terminate with the noisy group
        // exhausted and every converged group stopped at the floor.
        let mut guard = 0;
        loop {
            let round = sched.next_cells(&state);
            if round.is_empty() {
                break;
            }
            record_all(&mut state, &round, yield_of);
            guard += 1;
            assert!(guard < 100, "scheduler must terminate");
        }
        for group in &state.groups {
            if group.scenario == "a" && group.algo == "two-stage" {
                assert_eq!(group.used(), 8, "noisy group spends its whole pool");
            } else {
                assert_eq!(group.used(), 3, "converged groups stop at the floor");
                assert!(group.ci_half_width() <= sched.gate_half_width);
            }
        }
    }

    #[test]
    fn ocba_honors_short_pools() {
        let mut spec = grid_spec();
        spec.seeds = vec![7, 9];
        let sched = OcbaSchedule::default();
        let mut state = CampaignState::new(&spec);
        let floor = sched.next_cells(&state);
        assert_eq!(floor.len(), 8, "floor clamps to the 2-seed pool");
        // Wildly noisy yields: the gate never clears, but the pools are
        // exhausted, so the schedule still ends.
        record_all(&mut state, &floor, |c| if c.seed == 7 { 0.1 } else { 0.9 });
        assert!(sched.next_cells(&state).is_empty());
    }

    #[test]
    fn schedule_decisions_replay_from_the_completion_log() {
        // The determinism-under-resume argument, in miniature: replaying a
        // prefix of the (cell, yield) log reproduces the identical next
        // round.
        let mut spec = grid_spec();
        spec.seeds = (1..=6).collect();
        let sched = OcbaSchedule::default();
        let yield_of =
            |c: &Cell| 0.4 + 0.07 * ((c.seed * 13 + c.algo.len() as u64 * 31) % 7) as f64;
        let mut log: Vec<(Cell, f64)> = Vec::new();
        let mut state = CampaignState::new(&spec);
        for _ in 0..4 {
            let round = sched.next_cells(&state);
            if round.is_empty() {
                break;
            }
            for cell in round {
                let y = yield_of(&cell);
                state.record(&cell, y);
                log.push((cell, y));
            }
        }
        let reference = sched.next_cells(&state);
        // Replay the full log into a fresh state: same decision.
        let mut replayed = CampaignState::new(&spec);
        for (cell, y) in &log {
            replayed.record(cell, *y);
        }
        assert_eq!(sched.next_cells(&replayed), reference);
    }

    #[test]
    fn outcome_metrics_render_all_families() {
        let outcome = ScheduleOutcome {
            label: "ocba",
            rounds: 4,
            scheduled: 15,
            executed: 10,
            resumed: 5,
            groups_gated: 3,
            seeds_saved: 9,
        };
        let mut out = String::new();
        outcome.render_prometheus(&mut out);
        for family in [
            "moheco_schedule_rounds_total",
            "moheco_schedule_cells_scheduled_total",
            "moheco_schedule_cells_executed_total",
            "moheco_schedule_cells_resumed_total",
            "moheco_schedule_groups_gated_total",
            "moheco_schedule_seeds_saved_total",
        ] {
            assert!(out.contains(family), "missing {family}:\n{out}");
        }
        assert!(out.contains("schedule=\"ocba\""), "{out}");
        assert!(out.contains("moheco_schedule_seeds_saved_total{schedule=\"ocba\"} 9"));
    }
}
