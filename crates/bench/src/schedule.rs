//! Campaign scheduling: which cells run, at what budget class, in what
//! order, and when to stop.
//!
//! The paper's budget-allocation insight — spend replications where the
//! observed variance says they buy information — applied one level up. A
//! campaign is a set of `(scenario, algo)` **groups**, each with a pool of
//! candidate seeds and a ladder of [`BudgetClass`]es; a
//! [`CampaignScheduler`] decides, round by round, which
//! `(scenario, algo, seed, budget)` cells to run next based on the
//! cross-seed statistics observed so far:
//!
//! * [`FixedGrid`] reproduces the historical behavior exactly: one round
//!   containing the whole remaining rectangle in grid order (scenario
//!   outer, algo middle, seed inner), every cell at the spec's budget
//!   class. Bit-identical rows, counters, and progress order.
//! * [`OcbaSchedule`] treats each group as an OCBA arm
//!   ([`moheco_ocba::Arm`]): after a min-seeds floor it grants further seed
//!   replications by cross-seed variance, and a group stops early once its
//!   95 % CI half-width on the cross-seed mean yield clears the gate
//!   threshold — converged cells stop buying seeds that noisy cells need.
//! * [`OcbaSchedule`] with [`OcbaSchedule::shrink`] set (the `ocba-shrink`
//!   schedule) additionally shrinks the per-cell **budget class**: every
//!   group starts its floor at the cheapest rung of the spec's ladder
//!   (tiny), and escalates to the next rung only while the cross-seed CI at
//!   the current rung has not cleared the gate. Groups whose verdict is
//!   already pinned by cheap runs never pay for expensive ones; only the
//!   stubborn groups climb to the spec's full budget, where a cost-aware
//!   OCBA pass ([`moheco_ocba::allocate_arm_units`]) splits further
//!   replications by variance *per simulation spent*.
//!
//! # Determinism under resume
//!
//! [`crate::drive_schedule`] rebuilds scheduler state **only** from the
//! rows it consumes, in schedule order. Round 1 is a pure function of the
//! spec; every later round is a pure function of the
//! `(cell, best_yield, simulations)` sequence consumed so far. In
//! [`crate::EngineReuse::Reset`] mode each cell's row is a pure function of
//! `(scenario, algo, seed, budget)`, and rows are appended in schedule
//! order — so the rows a killed campaign left on disk are exactly a prefix
//! of the cell sequence the resumed process re-derives. The resumed process
//! consumes that prefix from disk (identical state evolution), reaches the
//! identical next decision, and appends byte-identical remaining rows. No
//! schedule journal is needed; the row log *is* the journal.

use crate::harness::BudgetClass;
use crate::jobspec::{JobSpec, ScheduleKind};
use crate::results::YIELD_TOLERANCE;
use moheco_obs::prometheus::{push_header, push_sample};
use moheco_ocba::{allocate_arm_increment, allocate_arm_units, Arm};

/// One schedulable unit of campaign work.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cell {
    /// Registry name of the scenario.
    pub scenario: String,
    /// Algorithm label.
    pub algo: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Budget class the cell runs at.
    pub budget: BudgetClass,
}

/// One completed cell of a group, as observed by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedCell {
    /// Master seed of the run.
    pub seed: u64,
    /// Budget class the cell ran at.
    pub budget: BudgetClass,
    /// Reported yield of the run's best design.
    pub best_yield: f64,
    /// Simulations the run spent.
    pub simulations: f64,
}

/// Observed state of one `(scenario, algo)` group: its seed pool, its
/// budget-class ladder, and the cells completed so far, in completion
/// order.
#[derive(Debug, Clone)]
pub struct GroupState {
    /// Registry name of the scenario.
    pub scenario: String,
    /// Algorithm label.
    pub algo: String,
    /// Candidate seeds, in spec order; the scheduler may use a prefix.
    pub seed_pool: Vec<u64>,
    /// Budget classes available to the scheduler, cheapest first. A single
    /// rung — the spec's budget class — except under `ocba-shrink`, where
    /// it is the full escalation ladder up to the spec's class
    /// ([`JobSpec::budget_ladder`]).
    pub ladder: Vec<BudgetClass>,
    /// Every completed cell, in completion order.
    pub completed: Vec<CompletedCell>,
}

impl GroupState {
    /// The most expensive rung of the group's ladder — the spec's budget
    /// class.
    pub fn top_class(&self) -> BudgetClass {
        *self.ladder.last().expect("a group ladder is never empty")
    }

    /// Seeds completed at `class` so far.
    pub fn used_at(&self, class: BudgetClass) -> usize {
        self.completed.iter().filter(|c| c.budget == class).count()
    }

    /// Pool seeds not yet completed at `class`, in pool order.
    pub fn unused_at(&self, class: BudgetClass) -> impl Iterator<Item = u64> + '_ {
        self.seed_pool.iter().copied().filter(move |s| {
            !self
                .completed
                .iter()
                .any(|c| c.seed == *s && c.budget == class)
        })
    }

    /// Cross-seed mean of `best_yield` at `class` (NaN with no
    /// completions).
    pub fn mean_at(&self, class: BudgetClass) -> f64 {
        let ys: Vec<f64> = self
            .completed
            .iter()
            .filter(|c| c.budget == class)
            .map(|c| c.best_yield)
            .collect();
        if ys.is_empty() {
            return f64::NAN;
        }
        ys.iter().sum::<f64>() / ys.len() as f64
    }

    /// Unbiased cross-seed variance of `best_yield` at `class` (0 below
    /// two completions).
    pub fn variance_at(&self, class: BudgetClass) -> f64 {
        let ys: Vec<f64> = self
            .completed
            .iter()
            .filter(|c| c.budget == class)
            .map(|c| c.best_yield)
            .collect();
        if ys.len() < 2 {
            return 0.0;
        }
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        ys.iter().map(|y| (y - mean).powi(2)).sum::<f64>() / (ys.len() - 1) as f64
    }

    /// 95 % CI half-width of the cross-seed mean yield at `class`, the same
    /// `Z_95 · std / √n` the aggregate records report. Infinite below two
    /// completions — a group can never gate on a single observation.
    pub fn ci_half_width_at(&self, class: BudgetClass) -> f64 {
        let n = self.used_at(class);
        if n < 2 {
            return f64::INFINITY;
        }
        moheco_sampling::Z_95 * self.variance_at(class).sqrt() / (n as f64).sqrt()
    }

    /// Mean simulations one completed cell at `class` cost, floored at one
    /// — the replication cost the cost-aware allocation pays per extra
    /// seed. One when no cell at `class` has completed yet.
    pub fn mean_cost_at(&self, class: BudgetClass) -> f64 {
        let costs: Vec<f64> = self
            .completed
            .iter()
            .filter(|c| c.budget == class)
            .map(|c| c.simulations)
            .collect();
        if costs.is_empty() {
            return 1.0;
        }
        (costs.iter().sum::<f64>() / costs.len() as f64).max(1.0)
    }

    /// Seeds completed at the top rung so far.
    pub fn used(&self) -> usize {
        self.used_at(self.top_class())
    }

    /// Pool seeds not yet completed at the top rung, in pool order.
    pub fn unused(&self) -> impl Iterator<Item = u64> + '_ {
        self.unused_at(self.top_class())
    }

    /// Cross-seed mean of `best_yield` at the top rung (NaN with no
    /// completions).
    pub fn mean(&self) -> f64 {
        self.mean_at(self.top_class())
    }

    /// Unbiased cross-seed variance of `best_yield` at the top rung (0
    /// below two completions).
    pub fn variance(&self) -> f64 {
        self.variance_at(self.top_class())
    }

    /// 95 % CI half-width of the cross-seed mean yield at the top rung.
    pub fn ci_half_width(&self) -> f64 {
        self.ci_half_width_at(self.top_class())
    }

    /// The rung the group has escalated to: starting from the cheapest
    /// class, a group climbs one rung whenever the current rung's floor is
    /// met but its CI half-width still exceeds the gate. Monotone under
    /// new completions — the statistics of a rung below the current level
    /// freeze once the group climbs past it, so a level can never revisit
    /// a lower rung.
    pub fn level(&self, min_seeds: usize, gate_half_width: f64) -> usize {
        let floor = min_seeds.min(self.seed_pool.len());
        let mut level = 0;
        while level + 1 < self.ladder.len() {
            let class = self.ladder[level];
            if self.used_at(class) >= floor && self.ci_half_width_at(class) > gate_half_width {
                level += 1;
            } else {
                break;
            }
        }
        level
    }

    /// The budget class the group's verdict rests on: the most expensive
    /// class with a completed cell, or the cheapest rung when nothing has
    /// completed. Aggregates and outcome accounting both use this rule, so
    /// they agree on which rows count — and it is a pure function of the
    /// completion log, so a resumed campaign re-derives it identically.
    pub fn final_class(&self) -> BudgetClass {
        self.completed
            .iter()
            .map(|c| c.budget)
            .max_by_key(|b| b.rung())
            .unwrap_or(self.ladder[0])
    }
}

/// Everything a [`CampaignScheduler`] may condition on: the per-group
/// cross-seed observations, with groups in grid order (scenario outer, algo
/// middle).
#[derive(Debug, Clone)]
pub struct CampaignState {
    /// Per-group state, in grid order.
    pub groups: Vec<GroupState>,
}

impl CampaignState {
    /// The initial (empty-observation) state of a spec's grid.
    pub fn new(spec: &JobSpec) -> Self {
        let ladder = spec.budget_ladder();
        let groups = spec
            .scenarios
            .iter()
            .flat_map(|scenario| {
                spec.algos.iter().map(|algo| GroupState {
                    scenario: scenario.clone(),
                    algo: algo.label().to_string(),
                    seed_pool: spec.seeds.clone(),
                    ladder: ladder.clone(),
                    completed: Vec::new(),
                })
            })
            .collect();
        Self { groups }
    }

    /// Records one completed cell. Cells outside the grid are ignored;
    /// duplicate `(seed, budget)` completions of a group are ignored.
    pub fn record(&mut self, cell: &Cell, best_yield: f64, simulations: f64) {
        if let Some(group) = self
            .groups
            .iter_mut()
            .find(|g| g.scenario == cell.scenario && g.algo == cell.algo)
        {
            if !group
                .completed
                .iter()
                .any(|c| c.seed == cell.seed && c.budget == cell.budget)
            {
                group.completed.push(CompletedCell {
                    seed: cell.seed,
                    budget: cell.budget,
                    best_yield,
                    simulations,
                });
            }
        }
    }
}

/// A campaign scheduling policy: given the observations so far, the next
/// round of cells to run (empty = campaign complete).
///
/// # Contract
///
/// Implementations must be **pure functions of the state** (no interior
/// mutability, no clocks, no RNG): [`crate::drive_schedule`] relies on this
/// to replay a killed campaign's decisions from its row log. Each non-empty
/// round must contain at least one cell not yet completed in some group —
/// otherwise the driver could loop forever — and must never repeat a
/// completed cell.
pub trait CampaignScheduler {
    /// The stable label (`fixed`, `ocba`, `ocba-shrink`) used in events and
    /// metrics.
    fn label(&self) -> &'static str;

    /// The next round of cells, in execution order.
    fn next_cells(&self, state: &CampaignState) -> Vec<Cell>;
}

/// The historical fixed rectangle: one round with every remaining cell in
/// grid order, at the spec's budget class. Bit-identical to the
/// pre-scheduler triple-nested loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedGrid;

impl CampaignScheduler for FixedGrid {
    fn label(&self) -> &'static str {
        "fixed"
    }

    fn next_cells(&self, state: &CampaignState) -> Vec<Cell> {
        state
            .groups
            .iter()
            .flat_map(|g| {
                g.unused().map(|seed| Cell {
                    scenario: g.scenario.clone(),
                    algo: g.algo.clone(),
                    seed,
                    budget: g.top_class(),
                })
            })
            .collect()
    }
}

/// OCBA over the campaign grid: seed replications flow to the groups whose
/// cross-seed variance says they need them.
///
/// Round 1 grants every group its floor — `min(min_seeds, pool)` seeds —
/// so no group ever gates on fewer than [`OcbaSchedule::min_seeds`]
/// observations. Afterwards, each round considers the **open** groups
/// (unused seeds remain and the CI half-width still exceeds
/// [`OcbaSchedule::gate_half_width`]), maps each to an OCBA arm
/// (mean/variance = cross-seed statistics, count = seeds used, cap = pool
/// size), and asks [`allocate_arm_increment`] to split a delta of one
/// replication per open group. Converged or exhausted groups receive
/// nothing; the campaign ends when no group is open.
///
/// With [`OcbaSchedule::shrink`] set the floor additionally starts at the
/// cheapest rung of each group's budget ladder and escalates one rung at a
/// time ([`GroupState::level`]), and the top-rung allocation switches to
/// the cost-aware [`allocate_arm_units`] with each group's observed mean
/// simulations per cell as its replication cost.
#[derive(Debug, Clone, Copy)]
pub struct OcbaSchedule {
    /// Minimum seeds per group (per rung, under `shrink`) before the gate
    /// may stop or escalate it.
    pub min_seeds: usize,
    /// CI half-width below which a group is considered converged. The
    /// default is [`YIELD_TOLERANCE`] — once the cross-seed mean is pinned
    /// tighter than the baseline gate's own tolerance, more seeds cannot
    /// change the verdict.
    pub gate_half_width: f64,
    /// Whether the scheduler may shrink the per-cell budget class: floors
    /// start at the cheapest ladder rung and escalate only while the gate
    /// has not cleared. Off by default — the classic `ocba` schedule runs
    /// every cell at the spec's budget class.
    pub shrink: bool,
}

impl Default for OcbaSchedule {
    fn default() -> Self {
        Self {
            min_seeds: 3,
            gate_half_width: YIELD_TOLERANCE,
            shrink: false,
        }
    }
}

impl OcbaSchedule {
    /// Whether a group still wants seeds: unused seeds remain, and the CI
    /// half-width has not cleared the gate.
    fn is_open(&self, group: &GroupState) -> bool {
        group.used() < group.seed_pool.len() && group.ci_half_width() > self.gate_half_width
    }

    /// Whether a `shrink` group still wants top-rung seeds: it has
    /// escalated to the top rung, met the floor there, has unused seeds
    /// left, and the top-rung CI has not cleared the gate.
    fn is_open_at_top(&self, group: &GroupState) -> bool {
        let top = group.top_class();
        let floor = self.min_seeds.min(group.seed_pool.len());
        group.level(self.min_seeds, self.gate_half_width) + 1 == group.ladder.len()
            && group.used_at(top) >= floor
            && group.used_at(top) < group.seed_pool.len()
            && group.ci_half_width_at(top) > self.gate_half_width
    }

    /// The classic (budget-class-preserving) policy. Kept verbatim so the
    /// `ocba` schedule stays bit-identical to its historical rows.
    fn next_cells_classic(&self, state: &CampaignState) -> Vec<Cell> {
        // Phase A: the floor round. Any group below its floor gets topped
        // up first — statistics on fewer than `min_seeds` seeds are too
        // weak to allocate on (or to gate on).
        let mut floor_cells = Vec::new();
        for group in &state.groups {
            let floor = self.min_seeds.min(group.seed_pool.len());
            if group.used() < floor {
                floor_cells.extend(group.unused().take(floor - group.used()).map(|seed| Cell {
                    scenario: group.scenario.clone(),
                    algo: group.algo.clone(),
                    seed,
                    budget: group.top_class(),
                }));
            }
        }
        if !floor_cells.is_empty() {
            return floor_cells;
        }

        // Phase B: OCBA over the open groups, one replication per open
        // group per round. Every open group has `ci_half_width > gate`,
        // which requires a strictly positive variance — so the allocation
        // inputs are always valid, and the delta (= number of open groups)
        // always fits in the open groups' remaining room: each round
        // schedules at least one cell, and the campaign terminates.
        let open: Vec<&GroupState> = state.groups.iter().filter(|g| self.is_open(g)).collect();
        if open.is_empty() {
            return Vec::new();
        }
        let arms: Vec<Arm> = open
            .iter()
            .map(|g| Arm::new(g.mean(), g.variance(), g.used()).with_cap(g.seed_pool.len()))
            .collect();
        let grants = allocate_arm_increment(&arms, open.len())
            // Unreachable with yields in [0, 1] and ≥ 2 observations per
            // open group; the uniform fallback keeps the guarantee that a
            // non-empty open set always makes progress.
            .unwrap_or_else(|_| vec![1; open.len()]);
        open.iter()
            .zip(&grants)
            .flat_map(|(group, &n)| {
                group.unused().take(n).map(|seed| Cell {
                    scenario: group.scenario.clone(),
                    algo: group.algo.clone(),
                    seed,
                    budget: group.top_class(),
                })
            })
            .collect()
    }

    /// The budget-class-shrinking policy behind the `ocba-shrink` schedule.
    fn next_cells_shrink(&self, state: &CampaignState) -> Vec<Cell> {
        // Phase A: the floor round, at each group's current ladder rung.
        // A group below its floor at the rung it has escalated to gets
        // topped up there first — so every verdict (gate or escalate)
        // rests on at least `min_seeds` observations at that rung.
        let mut floor_cells = Vec::new();
        for group in &state.groups {
            let floor = self.min_seeds.min(group.seed_pool.len());
            let class = group.ladder[group.level(self.min_seeds, self.gate_half_width)];
            let used = group.used_at(class);
            if used < floor {
                floor_cells.extend(group.unused_at(class).take(floor - used).map(|seed| Cell {
                    scenario: group.scenario.clone(),
                    algo: group.algo.clone(),
                    seed,
                    budget: class,
                }));
            }
        }
        if !floor_cells.is_empty() {
            return floor_cells;
        }

        // Phase B: cost-aware OCBA over the groups open at their top rung.
        // Each group's replication cost is its observed mean simulations
        // per top-rung cell, and the spendable units per round are one
        // replication's worth per open group — so expensive groups must
        // out-argue cheap ones with variance to keep buying seeds.
        let open: Vec<&GroupState> = state
            .groups
            .iter()
            .filter(|g| self.is_open_at_top(g))
            .collect();
        if open.is_empty() {
            return Vec::new();
        }
        let arms: Vec<Arm> = open
            .iter()
            .map(|g| {
                let top = g.top_class();
                Arm::new(g.mean_at(top), g.variance_at(top), g.used_at(top))
                    .with_cap(g.seed_pool.len())
                    .with_cost(g.mean_cost_at(top))
            })
            .collect();
        let units: f64 = arms.iter().map(|a| a.cost).sum();
        let grants = allocate_arm_units(&arms, units)
            // Unreachable for the same reason as the classic path; the
            // uniform fallback keeps the progress guarantee.
            .unwrap_or_else(|_| vec![1; open.len()]);
        let mut cells: Vec<Cell> = open
            .iter()
            .zip(&grants)
            .flat_map(|(group, &n)| {
                group.unused_at(group.top_class()).take(n).map(|seed| Cell {
                    scenario: group.scenario.clone(),
                    algo: group.algo.clone(),
                    seed,
                    budget: group.top_class(),
                })
            })
            .collect();
        if cells.is_empty() {
            // The unit allocation granted every whole replication to arms
            // that turned out to have no room. Force one seed into the
            // first open group (it has unused top-rung seeds by
            // definition) so a non-empty open set always makes progress.
            let group = open[0];
            if let Some(seed) = group.unused_at(group.top_class()).next() {
                cells.push(Cell {
                    scenario: group.scenario.clone(),
                    algo: group.algo.clone(),
                    seed,
                    budget: group.top_class(),
                });
            }
        }
        cells
    }
}

impl CampaignScheduler for OcbaSchedule {
    fn label(&self) -> &'static str {
        if self.shrink {
            "ocba-shrink"
        } else {
            "ocba"
        }
    }

    fn next_cells(&self, state: &CampaignState) -> Vec<Cell> {
        if self.shrink {
            self.next_cells_shrink(state)
        } else {
            self.next_cells_classic(state)
        }
    }
}

/// The scheduler implementation of a [`ScheduleKind`].
pub fn scheduler_for(kind: ScheduleKind) -> Box<dyn CampaignScheduler + Send + Sync> {
    match kind {
        ScheduleKind::Fixed => Box::new(FixedGrid),
        ScheduleKind::Ocba => Box::new(OcbaSchedule::default()),
        ScheduleKind::OcbaShrink => Box::new(OcbaSchedule {
            shrink: true,
            ..OcbaSchedule::default()
        }),
    }
}

/// What one group of a completed schedule spent and saved.
#[derive(Debug, Clone)]
pub struct GroupOutcome {
    /// Registry name of the scenario.
    pub scenario: String,
    /// Algorithm label.
    pub algo: String,
    /// The budget class the group's verdict rests on
    /// ([`GroupState::final_class`]).
    pub final_budget: BudgetClass,
    /// Seeds completed at the final budget class.
    pub seeds_used: usize,
    /// Pool seeds left unspent at the final budget class.
    pub seeds_saved: usize,
    /// Ladder rungs the group climbed past the cheapest class (0 for a
    /// single-rung ladder or a group gated at the bottom).
    pub escalations: usize,
    /// Simulations the group spent in total, **including** pilot cells at
    /// rungs below the final class — the honest price of the schedule.
    pub simulations: u64,
}

/// What a completed schedule did, for reports and metrics.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// The scheduler's stable label.
    pub label: &'static str,
    /// Allocation rounds taken (number of non-empty `next_cells` calls).
    pub rounds: usize,
    /// Cells the scheduler asked for in total.
    pub scheduled: usize,
    /// Scheduled cells executed in this invocation.
    pub executed: usize,
    /// Scheduled cells consumed from rows already on disk.
    pub resumed: usize,
    /// Groups stopped before exhausting their seed pool (0 under
    /// [`FixedGrid`], which always runs the full rectangle).
    pub groups_gated: usize,
    /// Seeds left unspent across all groups (at each group's final budget
    /// class) — the campaign-level budget the scheduler saved.
    pub seeds_saved: usize,
    /// Ladder rungs climbed across all groups (0 except under
    /// `ocba-shrink`).
    pub escalations: usize,
    /// Simulations spent across all groups, pilot cells included.
    pub simulations_total: u64,
    /// Per-group accounting, in grid order.
    pub groups: Vec<GroupOutcome>,
}

impl ScheduleOutcome {
    pub(crate) fn new(label: &'static str) -> Self {
        Self {
            label,
            rounds: 0,
            scheduled: 0,
            executed: 0,
            resumed: 0,
            groups_gated: 0,
            seeds_saved: 0,
            escalations: 0,
            simulations_total: 0,
            groups: Vec::new(),
        }
    }

    /// Fills the end-of-campaign accounting from the final scheduler
    /// state.
    pub(crate) fn finalize(&mut self, state: &CampaignState) {
        self.groups = state
            .groups
            .iter()
            .map(|g| {
                let final_budget = g.final_class();
                let seeds_used = g.used_at(final_budget);
                let simulations: f64 = g.completed.iter().map(|c| c.simulations).sum();
                GroupOutcome {
                    scenario: g.scenario.clone(),
                    algo: g.algo.clone(),
                    final_budget,
                    seeds_used,
                    seeds_saved: g.seed_pool.len() - seeds_used,
                    escalations: g
                        .ladder
                        .iter()
                        .position(|c| *c == final_budget)
                        .unwrap_or(0),
                    simulations: simulations.round() as u64,
                }
            })
            .collect();
        self.groups_gated = self.groups.iter().filter(|g| g.seeds_saved > 0).count();
        self.seeds_saved = self.groups.iter().map(|g| g.seeds_saved).sum();
        self.escalations = self.groups.iter().map(|g| g.escalations).sum();
        self.simulations_total = self.groups.iter().map(|g| g.simulations).sum();
    }

    /// Renders the `moheco_schedule_*` metric families in Prometheus text
    /// exposition format, labelled by scheduler.
    pub fn render_prometheus(&self, out: &mut String) {
        let families: [(&str, &str, f64); 8] = [
            (
                "moheco_schedule_rounds_total",
                "Allocation rounds taken by the campaign scheduler.",
                self.rounds as f64,
            ),
            (
                "moheco_schedule_cells_scheduled_total",
                "Cells the campaign scheduler asked for.",
                self.scheduled as f64,
            ),
            (
                "moheco_schedule_cells_executed_total",
                "Scheduled cells executed in this invocation.",
                self.executed as f64,
            ),
            (
                "moheco_schedule_cells_resumed_total",
                "Scheduled cells consumed from rows already on disk.",
                self.resumed as f64,
            ),
            (
                "moheco_schedule_groups_gated_total",
                "Groups stopped before exhausting their seed pool.",
                self.groups_gated as f64,
            ),
            (
                "moheco_schedule_seeds_saved_total",
                "Seeds left unspent across all groups.",
                self.seeds_saved as f64,
            ),
            (
                "moheco_schedule_escalations_total",
                "Budget-class ladder rungs climbed across all groups.",
                self.escalations as f64,
            ),
            (
                "moheco_schedule_simulations_total",
                "Simulations spent across all groups, pilot cells included.",
                self.simulations_total as f64,
            ),
        ];
        for (name, help, value) in families {
            push_header(out, name, "counter", help);
            push_sample(out, name, &[("schedule", self.label)], value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Algo, BudgetClass};

    fn grid_spec() -> JobSpec {
        JobSpec {
            scenarios: vec!["a".into(), "b".into()],
            algos: vec![Algo::TwoStage, Algo::De],
            budget: BudgetClass::Tiny,
            seeds: vec![1, 2, 3],
            ..JobSpec::default()
        }
    }

    fn shrink_spec() -> JobSpec {
        JobSpec {
            scenarios: vec!["a".into(), "b".into()],
            algos: vec![Algo::TwoStage, Algo::De],
            budget: BudgetClass::Small,
            seeds: (1..=8).collect(),
            schedule: ScheduleKind::OcbaShrink,
            ..JobSpec::default()
        }
    }

    fn record_all(state: &mut CampaignState, cells: &[Cell], yield_of: impl Fn(&Cell) -> f64) {
        for cell in cells {
            let y = yield_of(cell);
            state.record(cell, y, 100.0);
        }
    }

    #[test]
    fn fixed_grid_is_one_round_in_grid_order() {
        let spec = grid_spec();
        let mut state = CampaignState::new(&spec);
        let round = FixedGrid.next_cells(&state);
        assert_eq!(round.len(), 12);
        // Scenario outer, algo middle, seed inner, all at the spec budget.
        assert_eq!(
            (
                round[0].scenario.as_str(),
                round[0].algo.as_str(),
                round[0].seed
            ),
            ("a", "two-stage", 1)
        );
        assert_eq!(
            (
                round[3].scenario.as_str(),
                round[3].algo.as_str(),
                round[3].seed
            ),
            ("a", "de", 1)
        );
        assert_eq!(
            (
                round[6].scenario.as_str(),
                round[6].algo.as_str(),
                round[6].seed
            ),
            ("b", "two-stage", 1)
        );
        assert!(round.iter().all(|c| c.budget == BudgetClass::Tiny));
        record_all(&mut state, &round, |_| 0.5);
        assert!(FixedGrid.next_cells(&state).is_empty(), "second round ends");
    }

    #[test]
    fn fixed_grid_resumes_with_the_remaining_rectangle() {
        let spec = grid_spec();
        let mut state = CampaignState::new(&spec);
        let full = FixedGrid.next_cells(&state);
        record_all(&mut state, &full[..5], |_| 0.5);
        let rest = FixedGrid.next_cells(&state);
        assert_eq!(rest, full[5..].to_vec());
    }

    #[test]
    fn ocba_floor_round_covers_every_group() {
        let spec = grid_spec();
        let sched = OcbaSchedule::default();
        let state = CampaignState::new(&spec);
        let round = sched.next_cells(&state);
        // 4 groups × floor 3 = the whole 3-seed pool here.
        assert_eq!(round.len(), 12);
        for group in &state.groups {
            let mine = round
                .iter()
                .filter(|c| c.scenario == group.scenario && c.algo == group.algo)
                .count();
            assert_eq!(mine, 3, "floor seeds for {}/{}", group.scenario, group.algo);
        }
    }

    #[test]
    fn ocba_gates_converged_groups_and_feeds_noisy_ones() {
        let mut spec = grid_spec();
        spec.seeds = (1..=8).collect();
        let sched = OcbaSchedule::default();
        let mut state = CampaignState::new(&spec);
        // Group a/two-stage is noisy (±0.3); everything else is converged
        // (±0.001 across seeds).
        let yield_of = |c: &Cell| {
            let wiggle = if c.scenario == "a" && c.algo == "two-stage" {
                0.3
            } else {
                0.001
            };
            0.5 + wiggle * (c.seed as f64 - 2.0)
        };
        let floor = sched.next_cells(&state);
        assert_eq!(floor.len(), 12, "floor: 4 groups x 3 seeds");
        record_all(&mut state, &floor, yield_of);
        let round = sched.next_cells(&state);
        assert!(!round.is_empty());
        assert!(
            round
                .iter()
                .all(|c| c.scenario == "a" && c.algo == "two-stage"),
            "only the noisy group stays open: {round:?}"
        );
        // Run the campaign dry: it must terminate with the noisy group
        // exhausted and every converged group stopped at the floor.
        let mut guard = 0;
        loop {
            let round = sched.next_cells(&state);
            if round.is_empty() {
                break;
            }
            record_all(&mut state, &round, yield_of);
            guard += 1;
            assert!(guard < 100, "scheduler must terminate");
        }
        for group in &state.groups {
            if group.scenario == "a" && group.algo == "two-stage" {
                assert_eq!(group.used(), 8, "noisy group spends its whole pool");
            } else {
                assert_eq!(group.used(), 3, "converged groups stop at the floor");
                assert!(group.ci_half_width() <= sched.gate_half_width);
            }
        }
    }

    #[test]
    fn ocba_honors_short_pools() {
        let mut spec = grid_spec();
        spec.seeds = vec![7, 9];
        let sched = OcbaSchedule::default();
        let mut state = CampaignState::new(&spec);
        let floor = sched.next_cells(&state);
        assert_eq!(floor.len(), 8, "floor clamps to the 2-seed pool");
        // Wildly noisy yields: the gate never clears, but the pools are
        // exhausted, so the schedule still ends.
        record_all(&mut state, &floor, |c| if c.seed == 7 { 0.1 } else { 0.9 });
        assert!(sched.next_cells(&state).is_empty());
    }

    #[test]
    fn schedule_decisions_replay_from_the_completion_log() {
        // The determinism-under-resume argument, in miniature: replaying a
        // prefix of the (cell, yield) log reproduces the identical next
        // round.
        let mut spec = grid_spec();
        spec.seeds = (1..=6).collect();
        let sched = OcbaSchedule::default();
        let yield_of =
            |c: &Cell| 0.4 + 0.07 * ((c.seed * 13 + c.algo.len() as u64 * 31) % 7) as f64;
        let mut log: Vec<(Cell, f64)> = Vec::new();
        let mut state = CampaignState::new(&spec);
        for _ in 0..4 {
            let round = sched.next_cells(&state);
            if round.is_empty() {
                break;
            }
            for cell in round {
                let y = yield_of(&cell);
                state.record(&cell, y, 100.0);
                log.push((cell, y));
            }
        }
        let reference = sched.next_cells(&state);
        // Replay the full log into a fresh state: same decision.
        let mut replayed = CampaignState::new(&spec);
        for (cell, y) in &log {
            replayed.record(cell, *y, 100.0);
        }
        assert_eq!(sched.next_cells(&replayed), reference);
    }

    #[test]
    fn shrink_floor_starts_at_the_cheapest_rung() {
        let spec = shrink_spec();
        let sched = OcbaSchedule {
            shrink: true,
            ..OcbaSchedule::default()
        };
        let state = CampaignState::new(&spec);
        for group in &state.groups {
            assert_eq!(group.ladder, vec![BudgetClass::Tiny, BudgetClass::Small]);
        }
        let round = sched.next_cells(&state);
        assert_eq!(round.len(), 12, "4 groups x 3 floor seeds");
        assert!(
            round.iter().all(|c| c.budget == BudgetClass::Tiny),
            "every pilot runs at the cheapest rung: {round:?}"
        );
    }

    #[test]
    fn shrink_escalates_only_unconverged_groups() {
        let spec = shrink_spec();
        let sched = OcbaSchedule {
            shrink: true,
            ..OcbaSchedule::default()
        };
        let mut state = CampaignState::new(&spec);
        // Group a/two-stage is noisy at every rung; everything else is
        // pinned by its tiny pilots. Tiny cells cost 10 simulations, small
        // ones 50.
        let yield_of = |c: &Cell| {
            let wiggle = if c.scenario == "a" && c.algo == "two-stage" {
                0.3
            } else {
                0.001
            };
            0.5 + wiggle * (c.seed as f64 - 2.0)
        };
        let sims_of = |c: &Cell| match c.budget {
            BudgetClass::Tiny => 10.0,
            _ => 50.0,
        };
        let pilots = sched.next_cells(&state);
        for cell in &pilots {
            state.record(cell, yield_of(cell), sims_of(cell));
        }
        let escalation = sched.next_cells(&state);
        assert!(
            escalation.iter().all(|c| c.scenario == "a"
                && c.algo == "two-stage"
                && c.budget == BudgetClass::Small),
            "only the noisy group escalates, straight to small: {escalation:?}"
        );
        assert_eq!(escalation.len(), 3, "the escalated rung re-pays its floor");
        // Run dry: the noisy group exhausts its pool at small; the
        // converged groups never leave tiny.
        let mut guard = 0;
        loop {
            let round = sched.next_cells(&state);
            if round.is_empty() {
                break;
            }
            for cell in &round {
                assert_eq!(
                    (cell.scenario.as_str(), cell.algo.as_str()),
                    ("a", "two-stage"),
                    "converged groups must not be fed again"
                );
                state.record(cell, yield_of(cell), sims_of(cell));
            }
            guard += 1;
            assert!(guard < 100, "scheduler must terminate");
        }
        for group in &state.groups {
            if group.scenario == "a" && group.algo == "two-stage" {
                assert_eq!(group.final_class(), BudgetClass::Small);
                assert_eq!(group.used_at(BudgetClass::Small), 8);
                assert_eq!(group.used_at(BudgetClass::Tiny), 3, "pilots are kept");
            } else {
                assert_eq!(group.final_class(), BudgetClass::Tiny);
                assert_eq!(group.used_at(BudgetClass::Small), 0, "never paid for small");
                assert_eq!(group.used_at(BudgetClass::Tiny), 3);
            }
        }
        // The outcome accounting sees the whole bill, pilots included.
        let mut outcome = ScheduleOutcome::new(sched.label());
        outcome.finalize(&state);
        assert_eq!(outcome.escalations, 1, "one group climbed one rung");
        assert_eq!(
            outcome.simulations_total,
            3 * 10 + 8 * 50 + 3 * 3 * 10,
            "noisy pilots + noisy small pool + converged pilots"
        );
        assert_eq!(outcome.seeds_saved, 3 * 5, "converged groups each save 5");
        assert_eq!(outcome.groups_gated, 3);
        let noisy = outcome
            .groups
            .iter()
            .find(|g| g.scenario == "a" && g.algo == "two-stage")
            .unwrap();
        assert_eq!(noisy.final_budget, BudgetClass::Small);
        assert_eq!(noisy.seeds_used, 8);
        assert_eq!(noisy.seeds_saved, 0);
        assert_eq!(noisy.escalations, 1);
        assert_eq!(noisy.simulations, 3 * 10 + 8 * 50);
    }

    #[test]
    fn shrink_decisions_replay_from_the_completion_log() {
        // Same replay argument as the classic schedule, with budget
        // classes in the log: a resumed ocba-shrink campaign re-derives
        // the identical next round from its consumed rows.
        let spec = shrink_spec();
        let sched = OcbaSchedule {
            shrink: true,
            ..OcbaSchedule::default()
        };
        let yield_of =
            |c: &Cell| 0.4 + 0.07 * ((c.seed * 13 + c.algo.len() as u64 * 31) % 7) as f64;
        let sims_of = |c: &Cell| 10.0 * (c.budget.rung() + 1) as f64;
        let mut log: Vec<(Cell, f64, f64)> = Vec::new();
        let mut state = CampaignState::new(&spec);
        for _ in 0..4 {
            let round = sched.next_cells(&state);
            if round.is_empty() {
                break;
            }
            for cell in round {
                let (y, s) = (yield_of(&cell), sims_of(&cell));
                state.record(&cell, y, s);
                log.push((cell, y, s));
            }
        }
        let reference = sched.next_cells(&state);
        let mut replayed = CampaignState::new(&spec);
        for (cell, y, s) in &log {
            replayed.record(cell, *y, *s);
        }
        assert_eq!(sched.next_cells(&replayed), reference);
    }

    #[test]
    fn outcome_metrics_render_all_families() {
        let outcome = ScheduleOutcome {
            label: "ocba",
            rounds: 4,
            scheduled: 15,
            executed: 10,
            resumed: 5,
            groups_gated: 3,
            seeds_saved: 9,
            escalations: 2,
            simulations_total: 1234,
            groups: Vec::new(),
        };
        let mut out = String::new();
        outcome.render_prometheus(&mut out);
        for family in [
            "moheco_schedule_rounds_total",
            "moheco_schedule_cells_scheduled_total",
            "moheco_schedule_cells_executed_total",
            "moheco_schedule_cells_resumed_total",
            "moheco_schedule_groups_gated_total",
            "moheco_schedule_seeds_saved_total",
            "moheco_schedule_escalations_total",
            "moheco_schedule_simulations_total",
        ] {
            assert!(out.contains(family), "missing {family}:\n{out}");
        }
        assert!(out.contains("schedule=\"ocba\""), "{out}");
        assert!(out.contains("moheco_schedule_seeds_saved_total{schedule=\"ocba\"} 9"));
        assert!(out.contains("moheco_schedule_simulations_total{schedule=\"ocba\"} 1234"));
    }
}
