//! Determinism guarantees of the surrogate prescreening stage.
//!
//! * `--prescreen off` (the default) must reproduce the committed baseline
//!   results bit-for-bit — the prescreen subsystem may not perturb a single
//!   sample of an unscreened run;
//! * `--prescreen rsb` must be deterministic in the run seed, and
//!   bit-identical between the serial and parallel engines (the surrogate
//!   only ever sees measured estimates, which are engine-independent).

use moheco::PrescreenKind;
use moheco_bench::results::parse_flat_json;
use moheco_bench::{Algo, BudgetClass, EngineKind, RunSpec};
use moheco_sampling::EstimatorKind;
use moheco_scenarios::find_scenario;
use std::path::Path;

fn run(
    algo: Algo,
    seed: u64,
    engine: EngineKind,
    prescreen: PrescreenKind,
) -> moheco_bench::results::ScenarioResult {
    let scenario = find_scenario("margin_wall").expect("registered");
    RunSpec::new(scenario.as_ref(), algo)
        .budget(BudgetClass::Small)
        .seed(seed)
        .engine_kind(engine)
        .estimator(EstimatorKind::default())
        .prescreen(prescreen)
        .execute()
}

#[test]
fn prescreen_off_reproduces_the_committed_baseline_bit_for_bit() {
    // The committed baseline is a 3-seed aggregate (schema v4); a fresh
    // unscreened seed-1 run must reproduce the first per-seed trace digest
    // bit-for-bit and land inside the aggregate's observed yield range.
    let baseline_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../baselines/RESULTS_margin_wall.json");
    let baseline = parse_flat_json(&std::fs::read_to_string(baseline_path).expect("baseline"))
        .expect("well-formed baseline");
    assert_eq!(baseline.str("seeds"), Some("1,2,3"), "3-seed aggregate");
    let fresh = run(Algo::Memetic, 1, EngineKind::Serial, PrescreenKind::Off);
    let digests = baseline.str("trace_digests").expect("per-seed digests");
    assert_eq!(
        Some(fresh.trace_digest.as_str()),
        digests.split(',').next(),
        "seed-1 trace digest drifted from the committed baseline"
    );
    let lo = baseline.num("best_yield_min").expect("min");
    let hi = baseline.num("best_yield_max").expect("max");
    assert!(
        (lo..=hi).contains(&fresh.best_yield),
        "seed-1 yield {} outside the committed range [{lo}, {hi}]",
        fresh.best_yield
    );
    assert_eq!(fresh.prescreen, "off");
    assert_eq!(fresh.prescreen_skips, 0);
}

#[test]
fn prescreen_rsb_is_deterministic_in_the_seed() {
    let (a, b, c) = (
        run(Algo::Memetic, 1, EngineKind::Serial, PrescreenKind::Rsb),
        run(Algo::Memetic, 1, EngineKind::Serial, PrescreenKind::Rsb),
        run(Algo::Memetic, 2, EngineKind::Serial, PrescreenKind::Rsb),
    );
    assert_eq!(a.trace_digest, b.trace_digest);
    assert_eq!(a.best_yield, b.best_yield);
    assert_eq!(a.simulations, b.simulations);
    assert_eq!(a.prescreen_skips, b.prescreen_skips);
    assert!(
        c.trace_digest != a.trace_digest || c.simulations != a.simulations,
        "different seeds should differ"
    );
}

#[test]
fn prescreen_rsb_parallel_matches_serial() {
    let serial = run(Algo::Memetic, 1, EngineKind::Serial, PrescreenKind::Rsb);
    let parallel = run(Algo::Memetic, 1, EngineKind::Parallel, PrescreenKind::Rsb);
    assert_eq!(serial.trace_digest, parallel.trace_digest);
    assert_eq!(serial.best_yield, parallel.best_yield);
    assert_eq!(serial.simulations, parallel.simulations);
    assert_eq!(serial.prescreen_skips, parallel.prescreen_skips);
}

#[test]
fn prescreen_rsb_engages_and_saves_simulations_on_margin_wall() {
    let off = run(Algo::Memetic, 1, EngineKind::Serial, PrescreenKind::Off);
    let rsb = run(Algo::Memetic, 1, EngineKind::Serial, PrescreenKind::Rsb);
    assert!(rsb.prescreen_skips > 0, "the screen never engaged");
    assert!(
        rsb.simulations < off.simulations,
        "rsb {} vs off {}",
        rsb.simulations,
        off.simulations
    );
    assert!(
        (rsb.best_yield - off.best_yield).abs() <= moheco_bench::results::YIELD_TOLERANCE,
        "yield drifted: rsb {} off {}",
        rsb.best_yield,
        off.best_yield
    );
}

#[test]
fn de_and_ga_trial_filters_are_seed_deterministic() {
    for algo in [Algo::De, Algo::Ga] {
        let a = run(algo, 3, EngineKind::Serial, PrescreenKind::Rsb);
        let b = run(algo, 3, EngineKind::Serial, PrescreenKind::Rsb);
        assert_eq!(a.trace_digest, b.trace_digest, "{}", algo.label());
        assert_eq!(a.simulations, b.simulations, "{}", algo.label());
        assert_eq!(a.prescreen_skips, b.prescreen_skips, "{}", algo.label());
        // The unfiltered run differs once the filter engages (it may not on
        // every seed, but the result must still be well-formed).
        assert!(a.best_yield >= 0.0 && a.best_yield <= 1.0);
    }
}
