//! Scheduler-level guarantees of the campaign layer.
//!
//! * The [`FixedGrid`] refactor changed **nothing**: a fixed campaign's
//!   JSONL is byte-identical to the committed pre-refactor golden file.
//! * A killed `--schedule ocba` campaign — including one killed mid-row-
//!   write — re-derives the identical schedule on resume and appends
//!   byte-identical remaining rows, because scheduler state is rebuilt
//!   purely from the rows consumed in schedule order.
//! * The adaptive schedule honors the min-seeds floor: no group ever
//!   gates on fewer than `min(min_seeds, pool)` observations.
//! * The schedule is observable: one `campaign/schedule` span and one
//!   `campaign_schedule` event per allocation round.

use moheco_bench::campaign::{run_campaign, run_campaign_traced};
use moheco_bench::results::parse_flat_json;
use moheco_bench::{Algo, BudgetClass, JobSpec, OcbaSchedule, ScheduleKind};
use moheco_obs::{MemoryCollector, Tracer};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

fn ocba_spec() -> JobSpec {
    JobSpec {
        scenarios: vec![
            "margin_wall".to_string(),
            "quadratic_feasibility".to_string(),
        ],
        algos: vec![Algo::TwoStage],
        budget: BudgetClass::Tiny,
        seeds: (1..=6).collect(),
        schedule: ScheduleKind::Ocba,
        ..JobSpec::default()
    }
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("moheco-schedule-suite-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join("campaign.jsonl")
}

#[test]
fn fixed_campaign_matches_the_pre_refactor_golden_file() {
    // The golden file was produced by the pre-scheduler campaign loop (the
    // literal triple-nested rectangle) at the commit before this refactor.
    // The FixedGrid path must keep reproducing it byte for byte.
    let path = temp_path("golden");
    let spec = JobSpec {
        scenarios: vec!["margin_wall".to_string()],
        algos: vec![Algo::TwoStage],
        budget: BudgetClass::Tiny,
        seeds: vec![1, 2, 3],
        schedule: ScheduleKind::Fixed,
        ..JobSpec::default()
    };
    run_campaign(&spec, &path, |_| {}).expect("fixed campaign");
    let produced = std::fs::read(&path).expect("rows on disk");
    let golden = std::fs::read(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/data/golden_fixed_campaign.jsonl"
    ))
    .expect("committed golden file");
    assert_eq!(
        produced, golden,
        "FixedGrid campaign drifted from the pre-refactor byte stream"
    );
}

#[test]
fn killed_ocba_campaign_resumes_byte_identically() {
    // Reference: one uninterrupted adaptive campaign.
    let full_path = temp_path("ocba-full");
    let spec = ocba_spec();
    let full_report = run_campaign(&spec, &full_path, |_| {}).expect("uninterrupted");
    let full_bytes = std::fs::read(&full_path).expect("full file");
    let full_rows = full_bytes.iter().filter(|&&b| b == b'\n').count();
    assert!(
        full_rows >= 4,
        "need several rows to truncate mid-campaign, got {full_rows}"
    );
    assert_eq!(full_report.schedule.scheduled, full_rows);
    assert_eq!(full_report.executed, full_rows);
    assert!(
        full_report.schedule.rounds >= 2,
        "an adaptive campaign at this spec should take multiple rounds"
    );

    // "Kill" it mid-round: keep the first four complete rows plus a torn
    // partial row, exactly what a mid-write kill leaves on disk.
    let killed_path = temp_path("ocba-killed");
    let text = String::from_utf8(full_bytes.clone()).expect("utf8");
    let mut keep: String = text.lines().take(4).map(|l| format!("{l}\n")).collect();
    keep.push_str("{\"schema_version\": 5, \"scenario\": \"quadratic_fea"); // torn write
    std::fs::write(&killed_path, &keep).expect("partial file");
    std::fs::copy(
        full_path.with_extension("jsonl.spec"),
        killed_path.with_extension("jsonl.spec"),
    )
    .expect("spec sidecar survives a kill");

    // The resumed process must rebuild the scheduler state from the four
    // rows on disk, reach the identical next allocation, and append
    // byte-identical remaining rows.
    let resumed_report = run_campaign(&spec, &killed_path, |_| {}).expect("resume");
    assert_eq!(resumed_report.resumed, 4, "four complete rows were skipped");
    assert_eq!(resumed_report.executed, full_rows - 4);
    assert_eq!(resumed_report.schedule.resumed, 4);
    assert_eq!(resumed_report.schedule.executed, full_rows - 4);
    assert_eq!(resumed_report.schedule.scheduled, full_rows);
    assert_eq!(resumed_report.schedule.rounds, full_report.schedule.rounds);
    assert_eq!(
        resumed_report.schedule.seeds_saved,
        full_report.schedule.seeds_saved
    );
    let resumed_bytes = std::fs::read(&killed_path).expect("resumed file");
    assert_eq!(
        resumed_bytes, full_bytes,
        "resumed adaptive campaign JSONL differs from the uninterrupted run"
    );
    let full_aggregates: Vec<String> = full_report.aggregates.iter().map(|a| a.to_json()).collect();
    let resumed_aggregates: Vec<String> = resumed_report
        .aggregates
        .iter()
        .map(|a| a.to_json())
        .collect();
    assert_eq!(resumed_aggregates, full_aggregates);
}

#[test]
fn killed_ocba_shrink_campaign_resumes_byte_identically() {
    // The budget-class-shrinking schedule replays from the same row log as
    // the classic one — with the budget column now part of the replayed
    // observation. A killed campaign must re-derive the identical ladder
    // decisions (including escalations) and append byte-identical rows.
    let spec = JobSpec {
        budget: BudgetClass::Small,
        schedule: ScheduleKind::OcbaShrink,
        ..ocba_spec()
    };
    let full_path = temp_path("shrink-full");
    let full_report = run_campaign(&spec, &full_path, |_| {}).expect("uninterrupted");
    let full_bytes = std::fs::read(&full_path).expect("full file");
    let full_rows = full_bytes.iter().filter(|&&b| b == b'\n').count();
    assert!(
        full_rows >= 4,
        "need several rows to truncate mid-campaign, got {full_rows}"
    );
    assert_eq!(full_report.schedule.label, "ocba-shrink");
    // Every row starts at the cheap rung; escalations (if any) add
    // full-budget rows for the same (scenario, algo, seed) cells.
    let text = String::from_utf8(full_bytes.clone()).expect("utf8");
    let budgets: Vec<String> = text
        .lines()
        .map(|l| {
            parse_flat_json(l)
                .expect("row")
                .str("budget")
                .expect("budget column")
                .to_string()
        })
        .collect();
    assert!(budgets.iter().any(|b| b == "tiny"), "pilot rows exist");
    let small_rows = budgets.iter().filter(|b| *b == "small").count();
    if full_report.schedule.escalations > 0 {
        assert!(
            small_rows > 0,
            "escalated groups must have full-budget rows"
        );
    } else {
        assert_eq!(small_rows, 0, "no escalation means no full-budget rows");
    }

    // Kill it mid-row-write and resume.
    let killed_path = temp_path("shrink-killed");
    let mut keep: String = text.lines().take(4).map(|l| format!("{l}\n")).collect();
    keep.push_str("{\"schema_version\": 5, \"scenario\": \"quadratic_fea"); // torn write
    std::fs::write(&killed_path, &keep).expect("partial file");
    std::fs::copy(
        full_path.with_extension("jsonl.spec"),
        killed_path.with_extension("jsonl.spec"),
    )
    .expect("spec sidecar survives a kill");
    let resumed_report = run_campaign(&spec, &killed_path, |_| {}).expect("resume");
    assert_eq!(resumed_report.resumed, 4);
    assert_eq!(resumed_report.executed, full_rows - 4);
    assert_eq!(resumed_report.schedule.rounds, full_report.schedule.rounds);
    assert_eq!(
        resumed_report.schedule.escalations,
        full_report.schedule.escalations
    );
    assert_eq!(
        resumed_report.schedule.simulations_total,
        full_report.schedule.simulations_total
    );
    let resumed_bytes = std::fs::read(&killed_path).expect("resumed file");
    assert_eq!(
        resumed_bytes, full_bytes,
        "resumed ocba-shrink campaign JSONL differs from the uninterrupted run"
    );
    let full_aggregates: Vec<String> = full_report.aggregates.iter().map(|a| a.to_json()).collect();
    let resumed_aggregates: Vec<String> = resumed_report
        .aggregates
        .iter()
        .map(|a| a.to_json())
        .collect();
    assert_eq!(resumed_aggregates, full_aggregates);
}

#[test]
fn ocba_campaign_honors_the_min_seeds_floor() {
    let path = temp_path("floor");
    let spec = ocba_spec();
    let report = run_campaign(&spec, &path, |_| {}).expect("adaptive campaign");

    let floor = OcbaSchedule::default().min_seeds.min(spec.seeds.len());
    let text = std::fs::read_to_string(&path).expect("rows");
    let mut seeds_by_group: HashMap<String, Vec<u64>> = HashMap::new();
    for line in text.lines() {
        let row = parse_flat_json(line).expect("row");
        let key = format!(
            "{}/{}",
            row.str("scenario").unwrap(),
            row.str("algo").unwrap()
        );
        seeds_by_group
            .entry(key)
            .or_default()
            .push(row.num("seed").unwrap() as u64);
    }
    assert_eq!(
        seeds_by_group.len(),
        spec.scenarios.len() * spec.algos.len()
    );
    for (group, seeds) in &seeds_by_group {
        assert!(
            seeds.len() >= floor,
            "{group} gated on {} seed(s), floor is {floor}",
            seeds.len()
        );
    }
    // The outcome's savings accounting matches the rows on disk.
    let used: usize = seeds_by_group.values().map(Vec::len).sum();
    assert_eq!(
        report.schedule.seeds_saved,
        spec.cells() - used,
        "seeds_saved disagrees with the row log"
    );
}

#[test]
fn schedule_rounds_are_observable_as_spans_and_events() {
    let path = temp_path("obs");
    let collector = Arc::new(MemoryCollector::new());
    let tracer = Tracer::new(collector.clone());
    let report =
        run_campaign_traced(&ocba_spec(), &path, &tracer, |_| {}).expect("traced campaign");

    // Every allocation round (plus the final empty one that ends the
    // campaign) runs under a `campaign/schedule` span...
    let schedule_spans = collector
        .spans()
        .iter()
        .filter(|s| s.path == "campaign/schedule")
        .count();
    assert_eq!(schedule_spans, report.schedule.rounds + 1);

    // ...and every non-empty round emits one `campaign_schedule` event
    // carrying the scheduler label and the round's cell count.
    let rounds: Vec<_> = collector
        .events()
        .into_iter()
        .filter(|(kind, _)| kind == "campaign_schedule")
        .collect();
    assert_eq!(rounds.len(), report.schedule.rounds);
    let mut cells_announced = 0;
    for (_, fields) in &rounds {
        let field = |k: &str| {
            fields
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("campaign_schedule event missing {k:?}"))
        };
        assert_eq!(field("schedule"), "ocba");
        cells_announced += field("cells").parse::<usize>().expect("cell count");
    }
    assert_eq!(cells_announced, report.schedule.scheduled);
}
