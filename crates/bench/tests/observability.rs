//! Acceptance tests for the observability layer: attribution completeness,
//! no-op bit-identity, and serial/parallel attribution equality.

use moheco::PrescreenKind;
use moheco_bench::{Algo, BudgetClass, EngineKind, RunSpec};
use moheco_obs::{MemoryCollector, Tracer};
use moheco_sampling::EstimatorKind;
use moheco_scenarios::find_scenario;
use std::sync::Arc;

fn traced(
    scenario: &str,
    seed: u64,
    budget: BudgetClass,
    engine: EngineKind,
    tracer: &Tracer,
) -> moheco_bench::results::ScenarioResult {
    RunSpec::new(
        find_scenario(scenario).expect("registered").as_ref(),
        Algo::Memetic,
    )
    .budget(budget)
    .seed(seed)
    .engine_kind(engine)
    .estimator(EstimatorKind::default())
    .prescreen(PrescreenKind::Off)
    .tracer(tracer)
    .execute()
}

#[test]
fn per_phase_simulations_sum_exactly_to_the_engine_counter() {
    let tracer = Tracer::aggregating();
    let result = traced(
        "margin_wall",
        1,
        BudgetClass::Tiny,
        EngineKind::Serial,
        &tracer,
    );
    let breakdown = &result.phase_breakdown;
    assert!(!breakdown.is_empty());
    assert_eq!(
        breakdown.total_simulations(),
        result.engine_stats.simulations_run,
        "every simulation must be attributed to exactly one phase"
    );
    assert_eq!(breakdown.total_cache_hits(), result.engine_stats.cache_hits);
    // The two-stage taxonomy shows up as distinct phases.
    for phase in [
        "run",
        "run/optimize",
        "run/optimize/screening",
        "run/optimize/estimation/stage1/ocba_round",
        "run/optimize/estimation/stage2_promotion",
    ] {
        assert!(breakdown.get(phase).is_some(), "missing phase {phase}");
    }
}

#[test]
fn nm_refinement_is_attributed_as_its_own_phase() {
    // quadratic_feasibility at seed 3 is a pinned cell where the memetic
    // improvement tracker actually triggers Nelder-Mead refinement.
    let tracer = Tracer::aggregating();
    let result = traced(
        "quadratic_feasibility",
        3,
        BudgetClass::Small,
        EngineKind::Serial,
        &tracer,
    );
    assert!(result.local_searches > 0, "the NM trigger must have fired");
    let nm = result
        .phase_breakdown
        .get("run/optimize/nm_refine")
        .expect("nm_refine phase recorded");
    assert!(nm.simulations > 0);
    assert_eq!(
        result.phase_breakdown.total_simulations(),
        result.engine_stats.simulations_run
    );
}

#[test]
fn disabled_and_enabled_tracing_are_bit_identical_to_an_untraced_run() {
    let plain = RunSpec::new(
        find_scenario("margin_wall").expect("registered").as_ref(),
        Algo::Memetic,
    )
    .budget(BudgetClass::Tiny)
    .seed(1)
    .engine_kind(EngineKind::Serial)
    .estimator(EstimatorKind::default())
    .prescreen(PrescreenKind::Off)
    .execute();
    let collector = Arc::new(MemoryCollector::new());
    let enabled = traced(
        "margin_wall",
        1,
        BudgetClass::Tiny,
        EngineKind::Serial,
        &Tracer::new(collector.clone()),
    );
    assert!(!collector.spans().is_empty(), "spans must have streamed");
    let disabled = traced(
        "margin_wall",
        1,
        BudgetClass::Tiny,
        EngineKind::Serial,
        &Tracer::disabled(),
    );
    assert!(disabled.phase_breakdown.is_empty());
    for result in [&enabled, &disabled] {
        assert_eq!(result.best_yield.to_bits(), plain.best_yield.to_bits());
        assert_eq!(
            result.ci_half_width.to_bits(),
            plain.ci_half_width.to_bits()
        );
        assert_eq!(result.trace_digest, plain.trace_digest);
        assert_eq!(result.simulations, plain.simulations);
        assert_eq!(result.engine_stats, plain.engine_stats);
    }
}

#[test]
fn parallel_attribution_matches_serial() {
    // Spans live on the orchestration thread and the probe is read only at
    // span boundaries (where the engine is quiescent), so the work-stealing
    // engine attributes identically to the serial one.
    let serial_tracer = Tracer::aggregating();
    let serial = traced(
        "margin_wall",
        1,
        BudgetClass::Tiny,
        EngineKind::Serial,
        &serial_tracer,
    );
    let parallel_tracer = Tracer::aggregating();
    let parallel = traced(
        "margin_wall",
        1,
        BudgetClass::Tiny,
        EngineKind::Parallel,
        &parallel_tracer,
    );
    // Digest and compact form cover paths, span counts and counters but not
    // wall time — the only field allowed to differ.
    assert_eq!(
        serial.phase_breakdown.digest(),
        parallel.phase_breakdown.digest()
    );
    assert_eq!(
        serial.phase_breakdown.to_compact(),
        parallel.phase_breakdown.to_compact()
    );
    assert_eq!(serial.best_yield.to_bits(), parallel.best_yield.to_bits());
}
