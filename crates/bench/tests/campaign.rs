//! Determinism guarantees of the campaign layer.
//!
//! * A campaign's per-seed rows are **bit-identical** to standalone
//!   `moheco-run`-style invocations of the same
//!   `(scenario, algo, budget, seed, estimator, prescreen)` — engine reuse
//!   with a per-cell reset changes nothing.
//! * A **killed-and-resumed** campaign (including one killed mid-row-write)
//!   produces byte-identical JSONL and aggregate output to an uninterrupted
//!   one.
//! * The **shared-cache** reuse mode preserves every yield and trajectory
//!   decision (sample streams are seed-keyed pure functions); only executed-
//!   simulation counters shrink.
//! * **Eviction** under `max_cached_blocks` preserves yields, and a bounded
//!   parallel engine matches a bounded serial engine bit-for-bit, trace
//!   digests and counters included.

use moheco::PrescreenKind;
use moheco_bench::campaign::run_campaign;
use moheco_bench::results::parse_flat_json;
use moheco_bench::{Algo, BudgetClass, EngineKind, EngineReuse, JobSpec, RunSpec, ScheduleKind};
use moheco_sampling::EstimatorKind;
use moheco_scenarios::find_scenario;
use std::path::PathBuf;

fn spec(reuse: EngineReuse, engine_kind: EngineKind, max_cached_blocks: usize) -> JobSpec {
    JobSpec {
        scenarios: vec![
            "margin_wall".to_string(),
            "quadratic_feasibility".to_string(),
        ],
        algos: vec![Algo::TwoStage],
        budget: BudgetClass::Tiny,
        seeds: vec![1, 2, 3],
        engine: engine_kind,
        estimator: EstimatorKind::default(),
        prescreen: PrescreenKind::Off,
        reuse,
        max_cached_blocks,
        schedule: ScheduleKind::Fixed,
    }
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("moheco-campaign-suite-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join("campaign.jsonl")
}

#[test]
fn campaign_rows_are_bit_identical_to_standalone_runs() {
    let path = temp_path("standalone");
    let spec = spec(EngineReuse::Reset, EngineKind::Serial, 0);
    run_campaign(&spec, &path, |_| {}).expect("campaign runs");
    let text = std::fs::read_to_string(&path).expect("rows on disk");
    let mut lines = text.lines();
    for scenario_name in &spec.scenarios {
        let scenario = find_scenario(scenario_name).expect("registered");
        for &seed in &spec.seeds {
            let standalone = RunSpec::new(scenario.as_ref(), Algo::TwoStage)
                .budget(BudgetClass::Tiny)
                .seed(seed)
                .engine_kind(EngineKind::Serial)
                .estimator(EstimatorKind::default())
                .prescreen(PrescreenKind::Off)
                .execute();
            let expected = standalone.to_jsonl_row();
            let row = lines.next().expect("one row per cell");
            assert_eq!(
                format!("{row}\n"),
                expected,
                "{scenario_name}/seed {seed}: campaign row differs from the standalone run"
            );
        }
    }
    assert!(lines.next().is_none(), "no extra rows");
}

#[test]
fn killed_campaign_resumes_byte_identically() {
    // Reference: one uninterrupted campaign.
    let full_path = temp_path("resume-full");
    let s = spec(EngineReuse::Reset, EngineKind::Serial, 0);
    let full_report = run_campaign(&s, &full_path, |_| {}).expect("uninterrupted");
    let full_bytes = std::fs::read(&full_path).expect("full file");
    let full_aggregates: Vec<String> = full_report.aggregates.iter().map(|a| a.to_json()).collect();

    // "Kill" mid-campaign: keep the first two complete rows plus a torn
    // partial row (a mid-write kill leaves exactly this shape on disk,
    // alongside the intact spec fingerprint sidecar).
    let killed_path = temp_path("resume-killed");
    let text = String::from_utf8(full_bytes.clone()).expect("utf8");
    let mut keep: String = text.lines().take(2).map(|l| format!("{l}\n")).collect();
    keep.push_str("{\"schema_version\": 4, \"scenario\": \"margin_w"); // torn write
    std::fs::write(&killed_path, &keep).expect("partial file");
    std::fs::copy(
        full_path.with_extension("jsonl.spec"),
        killed_path.with_extension("jsonl.spec"),
    )
    .expect("spec sidecar survives a kill");

    let resumed_report = run_campaign(&s, &killed_path, |_| {}).expect("resume");
    assert_eq!(resumed_report.resumed, 2, "two complete rows were skipped");
    assert_eq!(resumed_report.executed, s.cells() - 2);
    let resumed_bytes = std::fs::read(&killed_path).expect("resumed file");
    assert_eq!(
        resumed_bytes, full_bytes,
        "resumed campaign JSONL differs from the uninterrupted run"
    );
    let resumed_aggregates: Vec<String> = resumed_report
        .aggregates
        .iter()
        .map(|a| a.to_json())
        .collect();
    assert_eq!(resumed_aggregates, full_aggregates);
}

#[test]
fn shared_cache_reuse_preserves_yields_and_trajectories() {
    // Two algorithms over the same seeds: their initial populations (a pure
    // function of the run seed) coincide, so the second algorithm's stage-1
    // estimates can be served from the first one's warm cache. Different
    // *seeds* never share Monte-Carlo blocks (streams are seed-keyed), which
    // is exactly why the values cannot drift.
    let with_algos = |reuse| JobSpec {
        algos: vec![Algo::TwoStage, Algo::Memetic],
        ..spec(reuse, EngineKind::Serial, 0)
    };
    let reset_path = temp_path("shared-reset");
    let shared_path = temp_path("shared-warm");
    run_campaign(&with_algos(EngineReuse::Reset), &reset_path, |_| {}).expect("reset campaign");
    run_campaign(&with_algos(EngineReuse::SharedCache), &shared_path, |_| {})
        .expect("shared campaign");

    let reset_text = std::fs::read_to_string(&reset_path).unwrap();
    let shared_text = std::fs::read_to_string(&shared_path).unwrap();
    let mut warm_hits = false;
    for (r, s) in reset_text.lines().zip(shared_text.lines()) {
        let r = parse_flat_json(r).expect("reset row");
        let s = parse_flat_json(s).expect("shared row");
        // Identical search outcome...
        assert_eq!(r.str("scenario"), s.str("scenario"));
        assert_eq!(r.num("seed"), s.num("seed"));
        assert_eq!(r.num("best_yield"), s.num("best_yield"), "yield drifted");
        assert_eq!(r.num("generations"), s.num("generations"));
        assert_eq!(r.num("ci_half_width"), s.num("ci_half_width"));
        // ...while the warm cache can only reduce executed simulations.
        let (rs, ss) = (r.num("simulations").unwrap(), s.num("simulations").unwrap());
        assert!(ss <= rs, "shared-cache mode executed more simulations");
        if ss < rs {
            warm_hits = true;
        }
    }
    assert!(
        warm_hits,
        "the shared cache never served anything across cells"
    );
}

#[test]
fn bounded_cache_campaign_preserves_yields_and_parallel_matches_serial() {
    let unbounded_path = temp_path("bounded-ref");
    let bounded_path = temp_path("bounded-serial");
    let parallel_path = temp_path("bounded-parallel");
    run_campaign(
        &spec(EngineReuse::Reset, EngineKind::Serial, 0),
        &unbounded_path,
        |_| {},
    )
    .expect("unbounded campaign");
    // A bound small enough to force evictions at tiny budgets.
    run_campaign(
        &spec(EngineReuse::Reset, EngineKind::Serial, 3),
        &bounded_path,
        |_| {},
    )
    .expect("bounded campaign");
    run_campaign(
        &spec(EngineReuse::Reset, EngineKind::Parallel, 3),
        &parallel_path,
        |_| {},
    )
    .expect("bounded parallel campaign");

    let unbounded = std::fs::read_to_string(&unbounded_path).unwrap();
    let bounded = std::fs::read_to_string(&bounded_path).unwrap();
    let parallel = std::fs::read_to_string(&parallel_path).unwrap();

    let mut evictions = 0.0;
    for (u, b) in unbounded.lines().zip(bounded.lines()) {
        let u = parse_flat_json(u).expect("unbounded row");
        let b = parse_flat_json(b).expect("bounded row");
        assert_eq!(
            u.num("best_yield"),
            b.num("best_yield"),
            "eviction changed a yield"
        );
        assert_eq!(u.num("generations"), b.num("generations"));
        evictions += b.num("engine_evicted_blocks").unwrap_or(0.0);
    }
    assert!(evictions > 0.0, "the bound never forced an eviction");

    // A bounded parallel campaign is bit-identical to the bounded serial
    // one — eviction order is deterministic, so even the executed-simulation
    // counters and trace digests agree; only the engine label differs.
    for (b, p) in bounded.lines().zip(parallel.lines()) {
        assert_eq!(
            b.replace("\"engine\": \"serial\"", "\"engine\": \"parallel\""),
            p,
            "bounded parallel row diverged from serial"
        );
    }
}
