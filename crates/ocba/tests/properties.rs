//! Property-style tests of the sequential OCBA loop: across randomized
//! (cap, budget, variance) configurations the loop must conserve its budget
//! exactly — never exceeding a per-design cap, never stranding budget while
//! capacity remains, and always spending precisely what the configuration
//! admits.

use moheco_ocba::allocation::allocate_incremental;
use moheco_ocba::sequential::{run_sequential, run_sequential_batched, SequentialConfig};
use moheco_ocba::DesignStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic Bernoulli simulator with per-design success probabilities.
struct Bernoulli {
    probs: Vec<f64>,
    state: u64,
}

impl Bernoulli {
    fn new(probs: Vec<f64>, seed: u64) -> Self {
        Self {
            probs,
            state: seed | 1,
        }
    }

    fn simulate(&mut self, design: usize, n: usize) -> Vec<f64> {
        (0..n)
            .map(|_| {
                self.state = self
                    .state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (self.state >> 11) as f64 / (1u64 << 53) as f64;
                if u < self.probs[design] {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    }
}

/// The exact spend the configuration admits: the initial phase costs
/// `min(n0, cap)` per design even when that overshoots the budget, further
/// rounds fill towards the budget, and the per-design cap bounds everything.
fn expected_spend(num_designs: usize, config: &SequentialConfig) -> usize {
    let cap = config.per_design_cap.unwrap_or(usize::MAX);
    let initial = config.n0.min(cap) * num_designs;
    config
        .total_budget
        .max(initial)
        .min(cap.saturating_mul(num_designs))
}

#[test]
fn randomized_configurations_conserve_budget() {
    let mut rng = StdRng::seed_from_u64(0xB0D6E7);
    for trial in 0..60 {
        let num_designs = rng.gen_range(2..9usize);
        let n0 = rng.gen_range(1..16usize);
        let delta = rng.gen_range(1..25usize);
        let cap = if rng.gen::<f64>() < 0.7 {
            Some(rng.gen_range(1..60usize))
        } else {
            None
        };
        let total_budget = rng.gen_range(1..400usize);
        let probs: Vec<f64> = (0..num_designs).map(|_| rng.gen::<f64>()).collect();
        let config = SequentialConfig {
            n0,
            delta,
            total_budget,
            per_design_cap: cap,
        };
        let mut sim = Bernoulli::new(probs, 1 + trial);
        let out = run_sequential(num_designs, config, |d, n| sim.simulate(d, n))
            .expect("at least two designs");

        // Spent vector and total agree.
        assert_eq!(
            out.spent.iter().sum::<usize>(),
            out.total_spent,
            "trial {trial}: spent vector disagrees with the total"
        );
        // The cap is never exceeded.
        if let Some(cap) = cap {
            for (d, &s) in out.spent.iter().enumerate() {
                assert!(s <= cap, "trial {trial}: design {d} spent {s} > cap {cap}");
            }
        }
        // Budget is spent exactly: no stranded budget while capacity
        // remains, no overspend beyond what the initial phase forces.
        assert_eq!(
            out.total_spent,
            expected_spend(num_designs, &config),
            "trial {trial}: config {config:?} spent {:?}",
            out.spent
        );
        // Statistics saw every replication.
        for (s, &n) in out.stats.iter().zip(&out.spent) {
            assert_eq!(s.count, n, "trial {trial}: stats/spend mismatch");
        }
    }
}

#[test]
fn rounds_allocate_exactly_delta_until_capacity_binds() {
    // Observe every simulator round: after the initial phase, each round's
    // request must sum to exactly min(delta, remaining budget, remaining
    // capacity) — the redistribution guarantees no round silently shrinks.
    let num_designs = 5;
    let cap = 40usize;
    let config = SequentialConfig {
        n0: 10,
        delta: 24,
        total_budget: 500, // cap binds first: 5 * 40 = 200
        per_design_cap: Some(cap),
    };
    let mut sim = Bernoulli::new(vec![0.9, 0.85, 0.8, 0.3, 0.1], 7);
    let mut rounds: Vec<usize> = Vec::new();
    let out = run_sequential_batched(num_designs, config, |round| {
        rounds.push(round.iter().map(|&(_, n)| n).sum());
        round
            .iter()
            .map(|&(d, n)| sim.simulate(d, n))
            .collect::<Vec<_>>()
    })
    .unwrap();
    assert_eq!(rounds[0], num_designs * config.n0, "initial phase");
    let mut spent = rounds[0];
    for (k, &r) in rounds.iter().enumerate().skip(1) {
        let room = num_designs * cap - spent;
        let remaining = config.total_budget - spent;
        assert_eq!(
            r,
            config.delta.min(remaining).min(room),
            "round {k} under-allocated (spent so far {spent})"
        );
        spent += r;
    }
    assert_eq!(out.total_spent, num_designs * cap);
}

#[test]
fn incremental_allocations_sum_to_delta_over_random_stats() {
    let mut rng = StdRng::seed_from_u64(0xA110C);
    for _ in 0..200 {
        let n = rng.gen_range(2..10usize);
        let stats: Vec<DesignStats> = (0..n)
            .map(|_| {
                DesignStats::new(
                    rng.gen::<f64>(),
                    rng.gen::<f64>() * 0.25,
                    rng.gen_range(0..500usize),
                )
            })
            .collect();
        let delta = rng.gen_range(1..100usize);
        let add = allocate_incremental(&stats, delta).expect("valid inputs");
        assert_eq!(add.iter().sum::<usize>(), delta, "stats {stats:?}");
    }
}
