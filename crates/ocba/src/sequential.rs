//! Sequential OCBA allocation loop.
//!
//! This is the procedure the first stage of MOHECO runs on each population of
//! feasible candidates:
//!
//! 1. spend `n0` replications on every design to obtain initial mean/variance
//!    estimates;
//! 2. repeatedly ask the OCBA rule for the next increment of `delta`
//!    replications and spend them on the designs the rule selects;
//! 3. stop when the total budget `T` is exhausted.
//!
//! The simulator is abstracted as a closure `FnMut(design, n) -> Vec<f64>`
//! returning the outcomes of `n` fresh replications of the given design (in
//! MOHECO, Bernoulli pass/fail outcomes of Monte-Carlo yield samples).

use crate::allocation::{DesignStats, OcbaError};
use crate::arms::{allocate_arm_increment, Arm};

/// Running statistics of one design maintained with Welford's algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStats {
    /// Number of replications accumulated.
    pub count: usize,
    /// Running mean.
    pub mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Adds many observations.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Sample variance of a single replication (unbiased); zero with fewer
    /// than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.variance() / self.count as f64).sqrt()
        }
    }

    /// Converts to the [`DesignStats`] consumed by the allocation rule.
    pub fn to_design_stats(self) -> DesignStats {
        DesignStats::new(self.mean, self.variance(), self.count)
    }
}

/// Configuration of the sequential allocation loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequentialConfig {
    /// Initial number of replications per design (`n0` in the paper; 15).
    pub n0: usize,
    /// Increment of replications allocated per OCBA round (`Δ`).
    pub delta: usize,
    /// Total replication budget `T` across all designs.
    pub total_budget: usize,
    /// Optional per-design cap on replications (`n_max`); `None` = unlimited.
    pub per_design_cap: Option<usize>,
}

impl SequentialConfig {
    /// Paper-default configuration for a population of `num_designs` feasible
    /// candidates: `n0 = 15`, `Δ = 20`, `T = sim_ave * num_designs` with
    /// `sim_ave = 35`.
    pub fn paper_default(num_designs: usize) -> Self {
        Self {
            n0: 15,
            delta: 20,
            total_budget: 35 * num_designs.max(1),
            per_design_cap: None,
        }
    }
}

/// Result of a sequential allocation run.
#[derive(Debug, Clone)]
pub struct SequentialOutcome {
    /// Final running statistics per design.
    pub stats: Vec<RunningStats>,
    /// Number of replications spent on each design.
    pub spent: Vec<usize>,
    /// Total number of replications spent.
    pub total_spent: usize,
    /// Number of OCBA rounds executed after the initial `n0` phase.
    pub rounds: usize,
}

impl SequentialOutcome {
    /// Index of the design with the best (highest) estimated mean.
    ///
    /// Non-finite means (e.g. a NaN from a poisoned outcome stream) are
    /// ranked worst-possible, so they can never win the selection.
    pub fn best_design(&self) -> usize {
        self.stats
            .iter()
            .enumerate()
            .max_by(|a, b| {
                crate::allocation::finite_or_worst(a.1.mean)
                    .partial_cmp(&crate::allocation::finite_or_worst(b.1.mean))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Estimated means per design.
    pub fn means(&self) -> Vec<f64> {
        self.stats.iter().map(|s| s.mean).collect()
    }
}

/// Runs the sequential OCBA loop over `num_designs` designs with a *batched*
/// simulator.
///
/// `simulate_round(&[(design, n), ...])` receives every allocation of one
/// round at once — the initial `n0` phase is one round, and each subsequent
/// `Δ`-increment is one round — and must return exactly one outcome vector
/// per entry, in entry order. A vector may be *shorter* than requested when
/// the simulator's own budget caps that design (e.g. a design entering with
/// prior samples close to its ceiling); accounting and the progress check
/// use the returned length. Batching the round is what lets an evaluation
/// engine dispatch all replications of a round in parallel; the allocation
/// decisions themselves are identical to the per-design formulation.
///
/// # Errors
///
/// Propagates [`OcbaError`] from the allocation rule (only possible with
/// fewer than two designs).
pub fn run_sequential_batched<F>(
    num_designs: usize,
    config: SequentialConfig,
    mut simulate_round: F,
) -> Result<SequentialOutcome, OcbaError>
where
    F: FnMut(&[(usize, usize)]) -> Vec<Vec<f64>>,
{
    if num_designs < 2 {
        return Err(OcbaError::TooFewDesigns { got: num_designs });
    }
    let mut stats = vec![RunningStats::new(); num_designs];
    let mut spent = vec![0usize; num_designs];
    let cap = config.per_design_cap.unwrap_or(usize::MAX);
    let mut total_spent = 0usize;

    let mut run_round = |round: &[(usize, usize)],
                         stats: &mut Vec<RunningStats>,
                         spent: &mut Vec<usize>,
                         total_spent: &mut usize| {
        if round.is_empty() {
            return false;
        }
        let outcomes = simulate_round(round);
        debug_assert_eq!(outcomes.len(), round.len(), "one outcome vector per entry");
        let mut progressed = false;
        for (&(d, n), out) in round.iter().zip(&outcomes) {
            debug_assert!(out.len() <= n, "simulator returned more than requested");
            stats[d].extend(out);
            spent[d] += out.len();
            *total_spent += out.len();
            progressed |= !out.is_empty();
        }
        progressed
    };

    // Phase 1: n0 replications each (bounded by the cap), as one round.
    let initial: Vec<(usize, usize)> = (0..num_designs)
        .filter_map(|d| {
            let n = config.n0.min(cap);
            (n > 0).then_some((d, n))
        })
        .collect();
    run_round(&initial, &mut stats, &mut spent, &mut total_spent);

    // Phase 2: incremental OCBA rounds. Each design is an abstract arm with
    // the per-design cap; the arm layer clamps every grant to its cap room
    // and redistributes whatever the caps swallowed to designs that still
    // have room. Without that redistribution, a round whose funded designs
    // are all at `per_design_cap` comes back empty and the loop stops —
    // stranding budget even though other designs are below their cap.
    let mut rounds = 0usize;
    while total_spent < config.total_budget {
        let remaining = config.total_budget - total_spent;
        let delta = config.delta.min(remaining).max(1);
        let arms: Vec<Arm> = stats
            .iter()
            .zip(&spent)
            .map(|(s, &n)| {
                let mut arm = Arm::new(s.mean, s.variance(), n);
                if let Some(c) = config.per_design_cap {
                    arm = arm.with_cap(c);
                }
                arm
            })
            .collect();
        let granted = allocate_arm_increment(&arms, delta)?;
        let round: Vec<(usize, usize)> = granted
            .iter()
            .enumerate()
            .filter_map(|(d, &n)| (n > 0).then_some((d, n)))
            .collect();
        let progressed = run_round(&round, &mut stats, &mut spent, &mut total_spent);
        rounds += 1;
        if !progressed {
            // All designs are capped; nothing more to do.
            break;
        }
    }

    Ok(SequentialOutcome {
        stats,
        spent,
        total_spent,
        rounds,
    })
}

/// Runs the sequential OCBA loop with a per-design simulator closure.
///
/// Thin wrapper over [`run_sequential_batched`] that evaluates each round
/// entry one by one, in entry order — the historical formulation, kept for
/// callers without a batch-capable evaluator.
///
/// # Errors
///
/// Propagates [`OcbaError`] from the allocation rule (only possible with
/// fewer than two designs).
pub fn run_sequential<F>(
    num_designs: usize,
    config: SequentialConfig,
    mut simulate: F,
) -> Result<SequentialOutcome, OcbaError>
where
    F: FnMut(usize, usize) -> Vec<f64>,
{
    run_sequential_batched(num_designs, config, |round| {
        round.iter().map(|&(d, n)| simulate(d, n)).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random Bernoulli simulator for tests.
    struct FakeBernoulli {
        probs: Vec<f64>,
        state: u64,
    }

    impl FakeBernoulli {
        fn new(probs: Vec<f64>) -> Self {
            Self {
                probs,
                state: 0x9E3779B97F4A7C15,
            }
        }
        fn next_uniform(&mut self) -> f64 {
            self.state = self
                .state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.state >> 11) as f64 / (1u64 << 53) as f64
        }
        fn simulate(&mut self, design: usize, n: usize) -> Vec<f64> {
            (0..n)
                .map(|_| {
                    if self.next_uniform() < self.probs[design] {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect()
        }
    }

    #[test]
    fn running_stats_mean_and_variance() {
        let mut s = RunningStats::new();
        s.extend(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert!(s.std_error() > 0.0);
        assert_eq!(s.count, 8);
    }

    #[test]
    fn running_stats_degenerate_cases() {
        let s = RunningStats::new();
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
        let mut s1 = RunningStats::new();
        s1.push(3.0);
        assert_eq!(s1.variance(), 0.0);
        assert_eq!(s1.mean, 3.0);
    }

    #[test]
    fn sequential_respects_total_budget() {
        let probs = vec![0.9, 0.7, 0.5, 0.3, 0.1];
        let mut sim = FakeBernoulli::new(probs.clone());
        let config = SequentialConfig {
            n0: 10,
            delta: 20,
            total_budget: 200,
            per_design_cap: None,
        };
        let out = run_sequential(probs.len(), config, |d, n| sim.simulate(d, n)).unwrap();
        assert_eq!(out.total_spent, 200);
        assert_eq!(out.spent.iter().sum::<usize>(), 200);
    }

    #[test]
    fn sequential_identifies_the_best_design() {
        let probs = vec![0.55, 0.95, 0.40, 0.30];
        let mut sim = FakeBernoulli::new(probs);
        let config = SequentialConfig::paper_default(4);
        let out = run_sequential(4, config, |d, n| sim.simulate(d, n)).unwrap();
        assert_eq!(out.best_design(), 1);
        assert_eq!(out.means().len(), 4);
    }

    #[test]
    fn good_designs_receive_more_samples_than_bad_ones() {
        // Mirrors the Fig. 3 claim: promising designs get most of the budget.
        let probs = vec![0.92, 0.88, 0.85, 0.2, 0.15, 0.1];
        let mut sim = FakeBernoulli::new(probs.clone());
        let config = SequentialConfig {
            n0: 15,
            delta: 20,
            total_budget: 35 * probs.len(),
            per_design_cap: None,
        };
        let out = run_sequential(probs.len(), config, |d, n| sim.simulate(d, n)).unwrap();
        let good: usize = out.spent[..3].iter().sum();
        let bad: usize = out.spent[3..].iter().sum();
        assert!(good > bad, "good {good} bad {bad}");
    }

    #[test]
    fn per_design_cap_is_enforced() {
        let probs = vec![0.9, 0.8, 0.1];
        let mut sim = FakeBernoulli::new(probs);
        let config = SequentialConfig {
            n0: 10,
            delta: 30,
            total_budget: 500,
            per_design_cap: Some(40),
        };
        let out = run_sequential(3, config, |d, n| sim.simulate(d, n)).unwrap();
        for &s in &out.spent {
            assert!(s <= 40, "spent {s} exceeds cap");
        }
        // Budget cannot be fully spent because of the cap; with the capped
        // round redistribution the loop fills every design exactly to it.
        assert_eq!(out.total_spent, 120);
    }

    #[test]
    fn capped_rounds_redistribute_to_uncapped_designs() {
        // Four close competitors hog the OCBA allocation; once they hit the
        // per-design cap, the rule still funds only them, so pre-fix the
        // round comes back empty and the loop breaks — stranding budget even
        // though the clearly-bad design 4 is far below its own cap.
        let probs = vec![0.9, 0.88, 0.86, 0.84, 0.1];
        let mut sim = FakeBernoulli::new(probs.clone());
        let config = SequentialConfig {
            n0: 15,
            delta: 25,
            total_budget: 50 * probs.len(),
            per_design_cap: Some(30),
        };
        let out = run_sequential(probs.len(), config, |d, n| sim.simulate(d, n)).unwrap();
        // Every design must be filled to its cap: the cap binds before the
        // budget (5 * 30 < 250).
        assert_eq!(
            out.total_spent,
            config.total_budget.min(probs.len() * 30),
            "spent {:?}",
            out.spent
        );
        for &s in &out.spent {
            assert_eq!(s, 30, "all designs reach the cap: {:?}", out.spent);
        }
    }

    #[test]
    fn nan_mean_design_is_never_best() {
        // A poisoned outcome stream gives design 1 a NaN mean; pre-fix the
        // max_by tie-handling lets it win the best-design selection.
        let mut outcome = SequentialOutcome {
            stats: vec![RunningStats::new(); 3],
            spent: vec![10; 3],
            total_spent: 30,
            rounds: 1,
        };
        outcome.stats[0].extend(&[1.0, 0.0, 1.0, 1.0]);
        outcome.stats[1].push(f64::NAN);
        outcome.stats[2].extend(&[0.0, 0.0, 1.0, 0.0]);
        assert!(outcome.stats[1].mean.is_nan());
        assert_eq!(outcome.best_design(), 0);
    }

    #[test]
    fn too_few_designs_is_an_error() {
        let res = run_sequential(1, SequentialConfig::paper_default(1), |_, n| vec![1.0; n]);
        assert!(matches!(res, Err(OcbaError::TooFewDesigns { .. })));
    }

    #[test]
    fn paper_default_budget_matches_sim_ave_times_population() {
        let c = SequentialConfig::paper_default(50);
        assert_eq!(c.n0, 15);
        assert_eq!(c.total_budget, 35 * 50);
    }
}
