//! OCBA over abstract arms.
//!
//! The allocation rule in [`crate::allocation`] speaks in "designs" because
//! that is what the paper allocates over: candidate circuit sizings inside
//! one population. The rule itself only ever consumes four numbers per
//! competitor — mean, variance, replications spent, and an optional cap —
//! so the same machinery applies one level up, where the competitors are
//! campaign cells and a "replication" is a whole seeded optimization run.
//! [`Arm`] is that four-number abstraction, and [`allocate_arm_increment`]
//! is the capped incremental allocation every consumer (the sequential
//! design loop, the campaign scheduler) routes through: it reuses
//! [`crate::allocate_incremental`]'s shortfall split (including the
//! remainder-to-underfunded-only and NaN-ranking fixes) and owns the
//! cap-clamp-then-redistribute step that used to live inline in
//! [`crate::run_sequential_batched`].

use crate::allocation::{allocate_incremental, DesignStats, OcbaError};

/// One competitor in an abstract OCBA allocation: anything with an observed
/// mean, an observed variance, a replication count, and (optionally) a hard
/// cap on how many replications it may ever receive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arm {
    /// Sample mean of the arm's performance (higher is better).
    pub mean: f64,
    /// Sample variance of a single replication of the arm.
    pub variance: f64,
    /// Replications already spent on the arm.
    pub count: usize,
    /// Hard cap on the arm's cumulative replications (`None` = unlimited).
    pub cap: Option<usize>,
    /// Cost of one replication of this arm, in whatever unit the caller
    /// budgets in (simulations, seconds, …). `1.0` recovers the classic
    /// uniform-cost OCBA; only [`allocate_arm_units`] consumes it.
    pub cost: f64,
}

impl Arm {
    /// Creates an uncapped, unit-cost arm.
    pub fn new(mean: f64, variance: f64, count: usize) -> Self {
        Self {
            mean,
            variance,
            count,
            cap: None,
            cost: 1.0,
        }
    }

    /// Sets the cumulative replication cap.
    pub fn with_cap(mut self, cap: usize) -> Self {
        self.cap = Some(cap);
        self
    }

    /// Sets the per-replication cost used by [`allocate_arm_units`].
    pub fn with_cost(mut self, cost: f64) -> Self {
        self.cost = cost;
        self
    }

    /// Replications the arm can still receive before hitting its cap.
    pub fn room(&self) -> usize {
        self.cap.unwrap_or(usize::MAX).saturating_sub(self.count)
    }
}

/// Allocates `delta` additional replications across `arms`, tracking the
/// OCBA-optimal cumulative proportions and respecting every arm's cap.
///
/// The grant vector sums to `min(delta, total cap room)`: each arm's OCBA
/// grant is clamped to its remaining cap room, and whatever the caps
/// swallowed is redistributed to arms that still have room — one replication
/// per arm per lap, in index order — so budget is never stranded while an
/// uncapped (or under-cap) arm could absorb it. With a single arm the OCBA
/// proportions are vacuous and the arm simply receives `min(delta, room)`.
///
/// # Errors
///
/// Returns [`OcbaError::ZeroBudget`] when `delta` is zero and
/// [`OcbaError::TooFewDesigns`] when `arms` is empty; otherwise propagates
/// [`crate::allocate_incremental`]'s input validation (e.g. a negative or
/// non-finite variance).
pub fn allocate_arm_increment(arms: &[Arm], delta: usize) -> Result<Vec<usize>, OcbaError> {
    if arms.is_empty() {
        return Err(OcbaError::TooFewDesigns { got: 0 });
    }
    if delta == 0 {
        return Err(OcbaError::ZeroBudget);
    }
    let mut granted: Vec<usize> = if arms.len() == 1 {
        vec![delta.min(arms[0].room())]
    } else {
        let stats: Vec<DesignStats> = arms
            .iter()
            .map(|a| DesignStats::new(a.mean, a.variance, a.count))
            .collect();
        let add = allocate_incremental(&stats, delta)?;
        add.iter()
            .zip(arms)
            .map(|(&n, arm)| n.min(arm.room()))
            .collect()
    };
    // Redistribute what the caps swallowed: one replication per arm per lap,
    // in index order, to arms still below their cap. Deterministic, and
    // identical to the redistribution the sequential design loop always ran.
    let mut leftover = delta - granted.iter().sum::<usize>();
    while leftover > 0 {
        let mut placed = false;
        for (g, arm) in granted.iter_mut().zip(arms) {
            if leftover == 0 {
                break;
            }
            if *g < arm.room() {
                *g += 1;
                leftover -= 1;
                placed = true;
            }
        }
        if !placed {
            break; // every arm is at its cap
        }
    }
    Ok(granted)
}

/// Allocates replications across `arms` under a *cost* budget of `units`
/// instead of a replication count, respecting every arm's cap.
///
/// Where [`allocate_arm_increment`] treats every replication as equally
/// expensive, here one replication of arm `i` consumes `arms[i].cost` units
/// — the shape the campaign scheduler needs once a "replication" is a whole
/// seeded optimization run whose simulation cost differs per scenario by an
/// order of magnitude. The OCBA-optimal *replication* proportions are
/// computed once (at a fixed fine resolution, so the result is a pure
/// function of the inputs), then replications are granted greedily: each
/// step funds the arm with room whose cumulative replication count is
/// furthest below its OCBA share and whose cost still fits the remaining
/// units. Ties break on the lower index. The greedy step is what keeps the
/// allocation deterministic and exactly reproducible from replayed state.
///
/// At least one replication is granted whenever `units` covers the cheapest
/// positive-share arm that has room, so a scheduler budgeting
/// `units = Σ cost(open arms)` per round is expected to make progress (and
/// must still guard the zero-grant corner, e.g. every open arm landing on a
/// zero OCBA share).
///
/// # Errors
///
/// Returns [`OcbaError::TooFewDesigns`] when `arms` is empty,
/// [`OcbaError::ZeroBudget`] when `units` is not positive,
/// [`OcbaError::InvalidCost`] on a non-positive or non-finite cost, and
/// propagates [`crate::allocate`]'s variance validation.
pub fn allocate_arm_units(arms: &[Arm], units: f64) -> Result<Vec<usize>, OcbaError> {
    if arms.is_empty() {
        return Err(OcbaError::TooFewDesigns { got: 0 });
    }
    if units <= 0.0 || !units.is_finite() {
        return Err(OcbaError::ZeroBudget);
    }
    for (i, arm) in arms.iter().enumerate() {
        if arm.cost <= 0.0 || !arm.cost.is_finite() {
            return Err(OcbaError::InvalidCost {
                index: i,
                value: arm.cost,
            });
        }
        if arm.variance < 0.0 || !arm.variance.is_finite() {
            return Err(OcbaError::InvalidVariance {
                index: i,
                value: arm.variance,
            });
        }
    }
    if arms.len() == 1 {
        let affordable = (units / arms[0].cost).floor() as usize;
        return Ok(vec![affordable.min(arms[0].room())]);
    }

    // OCBA target replication shares at a fixed fine resolution. The shares
    // only steer the greedy fill; their absolute scale is irrelevant.
    const RESOLUTION: usize = 1_000_000;
    let means: Vec<f64> = arms.iter().map(|a| a.mean).collect();
    let variances: Vec<f64> = arms.iter().map(|a| a.variance).collect();
    let mut shares = crate::allocation::allocate(&means, &variances, RESOLUTION)?;
    if shares.iter().all(|&w| w == 0) {
        shares = vec![1; arms.len()];
    }

    let mut granted = vec![0usize; arms.len()];
    let mut counts: Vec<f64> = arms.iter().map(|a| a.count as f64).collect();
    let mut remaining = units;
    loop {
        // The fundable arm furthest below its OCBA share. Zero-share arms
        // are only skipped, never funded: OCBA has already decided they buy
        // no selection confidence.
        let mut best: Option<(usize, f64)> = None;
        for (i, arm) in arms.iter().enumerate() {
            if granted[i] >= arm.room() || shares[i] == 0 || arm.cost > remaining {
                continue;
            }
            let deficit_score = counts[i] / shares[i] as f64;
            let better = match best {
                None => true,
                Some((_, score)) => deficit_score < score,
            };
            if better {
                best = Some((i, deficit_score));
            }
        }
        let Some((i, _)) = best else { break };
        granted[i] += 1;
        counts[i] += 1.0;
        remaining -= arms[i].cost;
    }
    Ok(granted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_input() {
        assert!(matches!(
            allocate_arm_increment(&[], 5),
            Err(OcbaError::TooFewDesigns { got: 0 })
        ));
        assert!(matches!(
            allocate_arm_increment(&[Arm::new(0.5, 0.1, 3)], 0),
            Err(OcbaError::ZeroBudget)
        ));
        assert!(matches!(
            allocate_arm_increment(&[Arm::new(0.5, -1.0, 3), Arm::new(0.4, 0.1, 3)], 5),
            Err(OcbaError::InvalidVariance { .. })
        ));
    }

    #[test]
    fn single_arm_gets_the_delta_up_to_its_cap() {
        let uncapped = allocate_arm_increment(&[Arm::new(0.5, 0.1, 3)], 7).unwrap();
        assert_eq!(uncapped, vec![7]);
        let capped = allocate_arm_increment(&[Arm::new(0.5, 0.1, 3).with_cap(5)], 7).unwrap();
        assert_eq!(capped, vec![2]);
        let full = allocate_arm_increment(&[Arm::new(0.5, 0.1, 5).with_cap(5)], 7).unwrap();
        assert_eq!(full, vec![0]);
    }

    #[test]
    fn noisier_arms_receive_more() {
        let arms = [
            Arm::new(0.9, 0.002, 3),
            Arm::new(0.7, 0.2, 3),
            Arm::new(0.69, 0.002, 3),
        ];
        let grants = allocate_arm_increment(&arms, 30).unwrap();
        assert_eq!(grants.iter().sum::<usize>(), 30);
        assert!(
            grants[1] > grants[2],
            "high-variance arm should earn more: {grants:?}"
        );
    }

    #[test]
    fn caps_redistribute_instead_of_stranding_budget() {
        // The noisy arm would hog the grant, but its cap leaves room for one
        // replication only; the rest must flow to the arms with room.
        let arms = [
            Arm::new(0.9, 0.3, 4).with_cap(5),
            Arm::new(0.85, 0.001, 3).with_cap(10),
            Arm::new(0.2, 0.001, 3).with_cap(10),
        ];
        let grants = allocate_arm_increment(&arms, 9).unwrap();
        assert_eq!(grants.iter().sum::<usize>(), 9, "{grants:?}");
        assert!(grants[0] <= 1, "cap respected: {grants:?}");
        for (g, arm) in grants.iter().zip(&arms) {
            assert!(g + arm.count <= arm.cap.unwrap(), "{grants:?}");
        }
    }

    #[test]
    fn fully_capped_arms_truncate_the_grant() {
        let arms = [
            Arm::new(0.9, 0.1, 5).with_cap(5),
            Arm::new(0.5, 0.1, 4).with_cap(5),
        ];
        let grants = allocate_arm_increment(&arms, 10).unwrap();
        assert_eq!(grants, vec![0, 1], "only the remaining room is granted");
    }

    #[test]
    fn unit_allocation_rejects_degenerate_input() {
        assert!(matches!(
            allocate_arm_units(&[], 5.0),
            Err(OcbaError::TooFewDesigns { got: 0 })
        ));
        assert!(matches!(
            allocate_arm_units(&[Arm::new(0.5, 0.1, 3)], 0.0),
            Err(OcbaError::ZeroBudget)
        ));
        assert!(matches!(
            allocate_arm_units(&[Arm::new(0.5, 0.1, 3).with_cost(0.0)], 5.0),
            Err(OcbaError::InvalidCost { index: 0, .. })
        ));
        assert!(matches!(
            allocate_arm_units(
                &[Arm::new(0.5, 0.1, 3), Arm::new(0.4, -2.0, 3).with_cost(2.0)],
                5.0
            ),
            Err(OcbaError::InvalidVariance { index: 1, .. })
        ));
    }

    #[test]
    fn single_arm_units_buy_whole_replications_up_to_the_cap() {
        let arms = [Arm::new(0.5, 0.1, 3).with_cost(2.5)];
        assert_eq!(allocate_arm_units(&arms, 9.0).unwrap(), vec![3]);
        let capped = [Arm::new(0.5, 0.1, 3).with_cap(5).with_cost(2.5)];
        assert_eq!(allocate_arm_units(&capped, 100.0).unwrap(), vec![2]);
        // Units below one replication buy nothing — never a fraction.
        assert_eq!(allocate_arm_units(&arms, 2.0).unwrap(), vec![0]);
    }

    #[test]
    fn unit_costs_recover_the_classic_proportions() {
        // With every cost at 1.0, units behave like a replication delta: the
        // high-variance competitor still earns the most.
        let arms = [
            Arm::new(0.9, 0.002, 3),
            Arm::new(0.7, 0.2, 3),
            Arm::new(0.69, 0.002, 3),
        ];
        let grants = allocate_arm_units(&arms, 30.0).unwrap();
        assert_eq!(grants.iter().sum::<usize>(), 30);
        assert!(
            grants[1] > grants[0] && grants[1] > grants[2],
            "high-variance arm should earn most: {grants:?}"
        );
    }

    #[test]
    fn expensive_arms_grant_fewer_replications_per_round() {
        // OCBA's replication shares favor the noisy arm 2:1 here, and the
        // count-based allocator grants accordingly — but that arm is 10x
        // more expensive per replication, so under a *unit* budget the
        // cheap arm ends up with more replications and the spend never
        // exceeds the budget.
        let arms = [
            Arm::new(0.5, 0.4, 3).with_cost(10.0),
            Arm::new(0.52, 0.1, 3).with_cost(1.0),
        ];
        let by_count = allocate_arm_increment(&arms, 12).unwrap();
        assert!(
            by_count[0] > by_count[1],
            "cost-blind allocation favors the noisy arm: {by_count:?}"
        );
        let grants = allocate_arm_units(&arms, 12.0).unwrap();
        let spent = grants[0] as f64 * 10.0 + grants[1] as f64;
        assert!(spent <= 12.0, "never overspends: {grants:?}");
        assert!(
            grants[1] > grants[0],
            "unit budget buys the cheap arm more replications: {grants:?}"
        );
        assert!(
            grants.iter().sum::<usize>() >= 1,
            "a full round budget always grants: {grants:?}"
        );
    }

    #[test]
    fn unit_allocation_respects_caps_and_is_deterministic() {
        let arms = [
            Arm::new(0.8, 0.3, 4).with_cap(5).with_cost(3.0),
            Arm::new(0.7, 0.3, 3).with_cap(10).with_cost(1.0),
        ];
        let a = allocate_arm_units(&arms, 30.0).unwrap();
        let b = allocate_arm_units(&arms, 30.0).unwrap();
        assert_eq!(a, b);
        assert!(a[0] <= 1, "cap leaves room for one replication: {a:?}");
        assert!(a[1] <= 7, "cap respected: {a:?}");
    }

    #[test]
    fn nan_mean_arm_is_ranked_worst_not_poisonous() {
        // Inherited from the allocation core: a NaN mean must neither win
        // the best-arm selection nor collapse the split to uniform.
        let arms = [
            Arm::new(f64::NAN, 0.1, 3),
            Arm::new(0.8, 0.05, 3),
            Arm::new(0.75, 0.2, 3),
        ];
        let grants = allocate_arm_increment(&arms, 30).unwrap();
        assert_eq!(grants.iter().sum::<usize>(), 30);
        assert!(
            grants[1] + grants[2] >= grants[0],
            "finite arms dominate: {grants:?}"
        );
    }
}
