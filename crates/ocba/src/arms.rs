//! OCBA over abstract arms.
//!
//! The allocation rule in [`crate::allocation`] speaks in "designs" because
//! that is what the paper allocates over: candidate circuit sizings inside
//! one population. The rule itself only ever consumes four numbers per
//! competitor — mean, variance, replications spent, and an optional cap —
//! so the same machinery applies one level up, where the competitors are
//! campaign cells and a "replication" is a whole seeded optimization run.
//! [`Arm`] is that four-number abstraction, and [`allocate_arm_increment`]
//! is the capped incremental allocation every consumer (the sequential
//! design loop, the campaign scheduler) routes through: it reuses
//! [`crate::allocate_incremental`]'s shortfall split (including the
//! remainder-to-underfunded-only and NaN-ranking fixes) and owns the
//! cap-clamp-then-redistribute step that used to live inline in
//! [`crate::run_sequential_batched`].

use crate::allocation::{allocate_incremental, DesignStats, OcbaError};

/// One competitor in an abstract OCBA allocation: anything with an observed
/// mean, an observed variance, a replication count, and (optionally) a hard
/// cap on how many replications it may ever receive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arm {
    /// Sample mean of the arm's performance (higher is better).
    pub mean: f64,
    /// Sample variance of a single replication of the arm.
    pub variance: f64,
    /// Replications already spent on the arm.
    pub count: usize,
    /// Hard cap on the arm's cumulative replications (`None` = unlimited).
    pub cap: Option<usize>,
}

impl Arm {
    /// Creates an uncapped arm.
    pub fn new(mean: f64, variance: f64, count: usize) -> Self {
        Self {
            mean,
            variance,
            count,
            cap: None,
        }
    }

    /// Sets the cumulative replication cap.
    pub fn with_cap(mut self, cap: usize) -> Self {
        self.cap = Some(cap);
        self
    }

    /// Replications the arm can still receive before hitting its cap.
    pub fn room(&self) -> usize {
        self.cap.unwrap_or(usize::MAX).saturating_sub(self.count)
    }
}

/// Allocates `delta` additional replications across `arms`, tracking the
/// OCBA-optimal cumulative proportions and respecting every arm's cap.
///
/// The grant vector sums to `min(delta, total cap room)`: each arm's OCBA
/// grant is clamped to its remaining cap room, and whatever the caps
/// swallowed is redistributed to arms that still have room — one replication
/// per arm per lap, in index order — so budget is never stranded while an
/// uncapped (or under-cap) arm could absorb it. With a single arm the OCBA
/// proportions are vacuous and the arm simply receives `min(delta, room)`.
///
/// # Errors
///
/// Returns [`OcbaError::ZeroBudget`] when `delta` is zero and
/// [`OcbaError::TooFewDesigns`] when `arms` is empty; otherwise propagates
/// [`crate::allocate_incremental`]'s input validation (e.g. a negative or
/// non-finite variance).
pub fn allocate_arm_increment(arms: &[Arm], delta: usize) -> Result<Vec<usize>, OcbaError> {
    if arms.is_empty() {
        return Err(OcbaError::TooFewDesigns { got: 0 });
    }
    if delta == 0 {
        return Err(OcbaError::ZeroBudget);
    }
    let mut granted: Vec<usize> = if arms.len() == 1 {
        vec![delta.min(arms[0].room())]
    } else {
        let stats: Vec<DesignStats> = arms
            .iter()
            .map(|a| DesignStats::new(a.mean, a.variance, a.count))
            .collect();
        let add = allocate_incremental(&stats, delta)?;
        add.iter()
            .zip(arms)
            .map(|(&n, arm)| n.min(arm.room()))
            .collect()
    };
    // Redistribute what the caps swallowed: one replication per arm per lap,
    // in index order, to arms still below their cap. Deterministic, and
    // identical to the redistribution the sequential design loop always ran.
    let mut leftover = delta - granted.iter().sum::<usize>();
    while leftover > 0 {
        let mut placed = false;
        for (g, arm) in granted.iter_mut().zip(arms) {
            if leftover == 0 {
                break;
            }
            if *g < arm.room() {
                *g += 1;
                leftover -= 1;
                placed = true;
            }
        }
        if !placed {
            break; // every arm is at its cap
        }
    }
    Ok(granted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_input() {
        assert!(matches!(
            allocate_arm_increment(&[], 5),
            Err(OcbaError::TooFewDesigns { got: 0 })
        ));
        assert!(matches!(
            allocate_arm_increment(&[Arm::new(0.5, 0.1, 3)], 0),
            Err(OcbaError::ZeroBudget)
        ));
        assert!(matches!(
            allocate_arm_increment(&[Arm::new(0.5, -1.0, 3), Arm::new(0.4, 0.1, 3)], 5),
            Err(OcbaError::InvalidVariance { .. })
        ));
    }

    #[test]
    fn single_arm_gets_the_delta_up_to_its_cap() {
        let uncapped = allocate_arm_increment(&[Arm::new(0.5, 0.1, 3)], 7).unwrap();
        assert_eq!(uncapped, vec![7]);
        let capped = allocate_arm_increment(&[Arm::new(0.5, 0.1, 3).with_cap(5)], 7).unwrap();
        assert_eq!(capped, vec![2]);
        let full = allocate_arm_increment(&[Arm::new(0.5, 0.1, 5).with_cap(5)], 7).unwrap();
        assert_eq!(full, vec![0]);
    }

    #[test]
    fn noisier_arms_receive_more() {
        let arms = [
            Arm::new(0.9, 0.002, 3),
            Arm::new(0.7, 0.2, 3),
            Arm::new(0.69, 0.002, 3),
        ];
        let grants = allocate_arm_increment(&arms, 30).unwrap();
        assert_eq!(grants.iter().sum::<usize>(), 30);
        assert!(
            grants[1] > grants[2],
            "high-variance arm should earn more: {grants:?}"
        );
    }

    #[test]
    fn caps_redistribute_instead_of_stranding_budget() {
        // The noisy arm would hog the grant, but its cap leaves room for one
        // replication only; the rest must flow to the arms with room.
        let arms = [
            Arm::new(0.9, 0.3, 4).with_cap(5),
            Arm::new(0.85, 0.001, 3).with_cap(10),
            Arm::new(0.2, 0.001, 3).with_cap(10),
        ];
        let grants = allocate_arm_increment(&arms, 9).unwrap();
        assert_eq!(grants.iter().sum::<usize>(), 9, "{grants:?}");
        assert!(grants[0] <= 1, "cap respected: {grants:?}");
        for (g, arm) in grants.iter().zip(&arms) {
            assert!(g + arm.count <= arm.cap.unwrap(), "{grants:?}");
        }
    }

    #[test]
    fn fully_capped_arms_truncate_the_grant() {
        let arms = [
            Arm::new(0.9, 0.1, 5).with_cap(5),
            Arm::new(0.5, 0.1, 4).with_cap(5),
        ];
        let grants = allocate_arm_increment(&arms, 10).unwrap();
        assert_eq!(grants, vec![0, 1], "only the remaining room is granted");
    }

    #[test]
    fn nan_mean_arm_is_ranked_worst_not_poisonous() {
        // Inherited from the allocation core: a NaN mean must neither win
        // the best-arm selection nor collapse the split to uniform.
        let arms = [
            Arm::new(f64::NAN, 0.1, 3),
            Arm::new(0.8, 0.05, 3),
            Arm::new(0.75, 0.2, 3),
        ];
        let grants = allocate_arm_increment(&arms, 30).unwrap();
        assert_eq!(grants.iter().sum::<usize>(), 30);
        assert!(
            grants[1] + grants[2] >= grants[0],
            "finite arms dominate: {grants:?}"
        );
    }
}
