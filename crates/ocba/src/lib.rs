//! `moheco-ocba` — ordinal optimization and optimal computing budget
//! allocation.
//!
//! MOHECO's first stage treats each population of feasible circuit sizings as
//! an ordinal-optimization problem: the Monte-Carlo yield of every candidate
//! is estimated just accurately enough to *rank* them, with the simulation
//! budget distributed by the OCBA asymptotic rule (Eq. (1) of the paper, from
//! Chen et al. 2000) so that promising candidates receive many samples and
//! clearly bad candidates receive few.
//!
//! * [`allocation`] — the OCBA rule itself ([`allocation::allocate`]) and an
//!   incremental variant that tops up designs already partially simulated.
//! * [`arms`] — the same rule over abstract arms (mean/variance/count/cap),
//!   used by both the sequential design loop and the campaign scheduler.
//! * [`sequential`] — the `n0`-then-`Δ`-increments loop used inside one
//!   MOHECO generation ([`sequential::run_sequential`]).
//! * [`ordinal`] — ranking helpers, good-enough subsets and alignment
//!   probability estimation.
//!
//! # Example
//!
//! ```
//! use moheco_ocba::allocation::allocate;
//!
//! // Four candidate designs with estimated yields and per-sample variances.
//! let means = [0.92, 0.88, 0.45, 0.20];
//! let variances = [0.07, 0.10, 0.25, 0.16];
//! let alloc = allocate(&means, &variances, 140)?;
//! assert_eq!(alloc.iter().sum::<usize>(), 140);
//! // The runner-up close to the best receives more budget than the stragglers.
//! assert!(alloc[1] > alloc[3]);
//! # Ok::<(), moheco_ocba::allocation::OcbaError>(())
//! ```

#![warn(missing_docs)]

pub mod allocation;
pub mod arms;
pub mod ordinal;
pub mod sequential;

pub use allocation::{allocate, allocate_incremental, DesignStats, OcbaError};
pub use arms::{allocate_arm_increment, allocate_arm_units, Arm};
pub use ordinal::{alignment_level, alignment_probability, rank_descending, selected_subset};
pub use sequential::{
    run_sequential, run_sequential_batched, RunningStats, SequentialConfig, SequentialOutcome,
};
