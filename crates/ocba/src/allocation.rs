//! The optimal computing budget allocation (OCBA) rule.
//!
//! Given `S` candidate designs with estimated means `J_i` and variances
//! `σ_i²`, and a total simulation budget `T`, OCBA (Chen et al. 2000 — the
//! rule quoted as Eq. (1) in the MOHECO paper) asymptotically maximises the
//! probability of correctly selecting the best design by allocating
//!
//! ```text
//! n_i / n_j = (σ_i / δ_{b,i})² / (σ_j / δ_{b,j})²      i, j ≠ b
//! n_b       = σ_b * sqrt( Σ_{i≠b} n_i² / σ_i² )
//! ```
//!
//! where `b` is the current best design and `δ_{b,i} = J_b - J_i`.
//!
//! In MOHECO the "designs" are the feasible candidate circuit sizings of one
//! population and the "simulations" are Monte-Carlo samples of the yield
//! indicator; the best design is the one with the highest estimated yield.

use std::fmt;

/// Errors returned by the allocation routines.
#[derive(Debug, Clone, PartialEq)]
pub enum OcbaError {
    /// Fewer than two designs were supplied.
    TooFewDesigns {
        /// Number supplied.
        got: usize,
    },
    /// The statistics vectors have mismatched lengths.
    LengthMismatch {
        /// Length of the means vector.
        means: usize,
        /// Length of the variances vector.
        variances: usize,
    },
    /// The total budget is zero.
    ZeroBudget,
    /// A variance was negative or not finite.
    InvalidVariance {
        /// Index of the offending design.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A per-replication cost was zero, negative or not finite.
    InvalidCost {
        /// Index of the offending arm.
        index: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for OcbaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OcbaError::TooFewDesigns { got } => {
                write!(f, "ocba needs at least two designs, got {got}")
            }
            OcbaError::LengthMismatch { means, variances } => write!(
                f,
                "means ({means}) and variances ({variances}) must have the same length"
            ),
            OcbaError::ZeroBudget => write!(f, "total budget must be positive"),
            OcbaError::InvalidVariance { index, value } => {
                write!(f, "invalid variance {value} for design {index}")
            }
            OcbaError::InvalidCost { index, value } => {
                write!(f, "invalid replication cost {value} for arm {index}")
            }
        }
    }
}

impl std::error::Error for OcbaError {}

/// Maps a non-finite mean (NaN or an infinity) to the worst possible value
/// so comparisons against it are total and it can never win a best-design
/// selection. Finite means pass through unchanged.
pub(crate) fn finite_or_worst(mean: f64) -> f64 {
    if mean.is_finite() {
        mean
    } else {
        f64::NEG_INFINITY
    }
}

/// Summary statistics of one design under simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignStats {
    /// Sample mean of the performance (here: estimated yield).
    pub mean: f64,
    /// Sample variance of a *single* simulation replication.
    pub variance: f64,
    /// Number of replications already spent on this design.
    pub samples: usize,
}

impl DesignStats {
    /// Creates design statistics.
    pub fn new(mean: f64, variance: f64, samples: usize) -> Self {
        Self {
            mean,
            variance,
            samples,
        }
    }
}

/// Computes the OCBA allocation ratios for a total budget of `total` new
/// simulations, maximising the mean (use negated means to minimise).
///
/// Returns the *target cumulative* number of simulations for each design such
/// that the targets sum to `total`. Degenerate situations are regularised:
/// zero variances are floored at a small epsilon and zero mean-differences at
/// a fraction of the smallest non-zero difference, matching common OCBA
/// implementations.
///
/// # Errors
///
/// Returns [`OcbaError`] on invalid input (fewer than two designs, length
/// mismatch, zero budget or negative variance).
pub fn allocate(means: &[f64], variances: &[f64], total: usize) -> Result<Vec<usize>, OcbaError> {
    if means.len() != variances.len() {
        return Err(OcbaError::LengthMismatch {
            means: means.len(),
            variances: variances.len(),
        });
    }
    if means.len() < 2 {
        return Err(OcbaError::TooFewDesigns { got: means.len() });
    }
    if total == 0 {
        return Err(OcbaError::ZeroBudget);
    }
    for (i, &v) in variances.iter().enumerate() {
        if v < 0.0 || !v.is_finite() {
            return Err(OcbaError::InvalidVariance { index: i, value: v });
        }
    }

    let s = means.len();
    // Best design: highest mean. Non-finite means (NaN from a degenerate
    // estimate, infinities from an overflowed one) are treated as
    // worst-possible, so a poisoned design can never be selected as `b` and
    // contaminate every delta below.
    let sane: Vec<f64> = means.iter().map(|&m| finite_or_worst(m)).collect();
    let b = sane
        .iter()
        .enumerate()
        .max_by(|a, c| a.1.partial_cmp(c.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0);

    // Regularisation floors.
    let var_floor = variances
        .iter()
        .cloned()
        .filter(|v| *v > 0.0)
        .fold(f64::INFINITY, f64::min);
    let var_floor = if var_floor.is_finite() {
        var_floor * 1e-3
    } else {
        1e-12
    };
    let mut deltas: Vec<f64> = sane.iter().map(|&m| sane[b] - m).collect();
    let delta_floor = deltas
        .iter()
        .cloned()
        .filter(|d| *d > 0.0)
        .fold(f64::INFINITY, f64::min);
    let delta_floor = if delta_floor.is_finite() {
        delta_floor * 1e-2
    } else {
        1e-6
    };
    for (i, d) in deltas.iter_mut().enumerate() {
        if i != b && *d <= 0.0 {
            *d = delta_floor;
        }
    }

    // Relative ratios w_i = (sigma_i / delta_i)^2 for i != b, w_ref for the
    // first non-best design as reference.
    let sigma = |i: usize| variances[i].max(var_floor).sqrt();
    let mut weights = vec![0.0; s];
    for i in 0..s {
        if i == b {
            continue;
        }
        let w = (sigma(i) / deltas[i]).powi(2);
        weights[i] = w;
    }
    // n_b proportional to sigma_b * sqrt(sum_i (w_i / sigma_i)^2 * sigma_i^2)
    //  = sigma_b * sqrt(sum_i w_i^2 / sigma_i^2)
    let sum_sq: f64 = (0..s)
        .filter(|&i| i != b)
        .map(|i| (weights[i] * weights[i]) / variances[i].max(var_floor))
        .sum();
    weights[b] = sigma(b) * sum_sq.sqrt();

    let weight_sum: f64 = weights.iter().sum();
    if weight_sum <= 0.0 || !weight_sum.is_finite() {
        // Fall back to uniform allocation.
        let each = total / s;
        let mut out = vec![each; s];
        let mut rem = total - each * s;
        let mut i = 0;
        while rem > 0 {
            out[i] += 1;
            rem -= 1;
            i = (i + 1) % s;
        }
        return Ok(out);
    }

    // Convert ratios to integer allocations summing to `total` (largest
    // remainder method).
    let raw: Vec<f64> = weights
        .iter()
        .map(|w| w / weight_sum * total as f64)
        .collect();
    let mut alloc: Vec<usize> = raw.iter().map(|r| r.floor() as usize).collect();
    let mut assigned: usize = alloc.iter().sum();
    let mut remainders: Vec<(usize, f64)> = raw
        .iter()
        .enumerate()
        .map(|(i, r)| (i, r - r.floor()))
        .collect();
    remainders.sort_by(|a, c| c.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut k = 0;
    while assigned < total {
        alloc[remainders[k % s].0] += 1;
        assigned += 1;
        k += 1;
    }
    Ok(alloc)
}

/// Computes the incremental allocation given already-spent samples.
///
/// `stats[i].samples` simulations have already been spent on design `i`; the
/// function allocates `delta` *additional* simulations so that the cumulative
/// totals track the OCBA-optimal proportions as closely as possible (designs
/// that already exceed their target receive nothing).
///
/// Returns the number of additional simulations for each design (sums to
/// `delta`).
///
/// # Errors
///
/// Propagates the errors of [`allocate`].
pub fn allocate_incremental(stats: &[DesignStats], delta: usize) -> Result<Vec<usize>, OcbaError> {
    let means: Vec<f64> = stats.iter().map(|s| s.mean).collect();
    let variances: Vec<f64> = stats.iter().map(|s| s.variance).collect();
    let spent: usize = stats.iter().map(|s| s.samples).sum();
    let total = spent + delta;
    let target = allocate(&means, &variances, total)?;
    // Additional samples: shortfall wrt target, then renormalise to `delta`.
    let shortfall: Vec<usize> = target
        .iter()
        .zip(stats)
        .map(|(&t, s)| t.saturating_sub(s.samples))
        .collect();
    let short_total: usize = shortfall.iter().sum();
    if short_total == 0 {
        // Everyone is at or above target; spread uniformly.
        let s = stats.len();
        let each = delta / s;
        let mut out = vec![each; s];
        let mut rem = delta - each * s;
        let mut i = 0;
        while rem > 0 {
            out[i] += 1;
            rem -= 1;
            i = (i + 1) % s;
        }
        return Ok(out);
    }
    let mut out: Vec<usize> = shortfall
        .iter()
        .map(|&sf| ((sf as f64 / short_total as f64) * delta as f64).floor() as usize)
        .collect();
    let mut assigned: usize = out.iter().sum();
    // Distribute the remainder to the designs with the largest shortfall.
    // Only designs that are actually under their OCBA target may receive
    // remainder units: cycling through the full design list would hand
    // increments to already-over-target designs whenever the remainder
    // exceeds the number of underfunded ones (possible through floating-point
    // rounding of the proportional split at large deltas).
    let mut order: Vec<usize> = (0..stats.len()).filter(|&i| shortfall[i] > 0).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(shortfall[i]));
    let mut k = 0;
    while assigned < delta {
        out[order[k % order.len()]] += 1;
        assigned += 1;
        k += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            allocate(&[1.0], &[1.0], 10),
            Err(OcbaError::TooFewDesigns { .. })
        ));
        assert!(matches!(
            allocate(&[1.0, 2.0], &[1.0], 10),
            Err(OcbaError::LengthMismatch { .. })
        ));
        assert!(matches!(
            allocate(&[1.0, 2.0], &[1.0, 1.0], 0),
            Err(OcbaError::ZeroBudget)
        ));
        assert!(matches!(
            allocate(&[1.0, 2.0], &[1.0, -1.0], 10),
            Err(OcbaError::InvalidVariance { .. })
        ));
    }

    #[test]
    fn allocation_sums_to_total() {
        let means = [0.9, 0.7, 0.5, 0.3];
        let vars = [0.09, 0.21, 0.25, 0.21];
        for total in [10, 100, 997] {
            let a = allocate(&means, &vars, total).unwrap();
            assert_eq!(a.iter().sum::<usize>(), total);
        }
    }

    #[test]
    fn close_competitors_receive_more_budget() {
        // Design 1 is close to the best (0.88 vs 0.9); design 3 is far away.
        let means = [0.90, 0.88, 0.60, 0.30];
        let vars = [0.1, 0.1, 0.1, 0.1];
        let a = allocate(&means, &vars, 1000).unwrap();
        assert!(
            a[1] > a[2] && a[2] > a[3],
            "closer competitors should get more: {a:?}"
        );
        // The best itself also receives a healthy share.
        assert!(a[0] > a[3]);
    }

    #[test]
    fn noisier_designs_receive_more_budget() {
        let means = [0.9, 0.7, 0.7];
        let vars = [0.05, 0.25, 0.05];
        let a = allocate(&means, &vars, 1000).unwrap();
        assert!(a[1] > a[2], "higher variance should get more: {a:?}");
    }

    #[test]
    fn clearly_bad_designs_get_little() {
        // Mirrors Fig. 3 of the paper qualitatively: good candidates hog the
        // budget, bad candidates receive only a small share.
        let means = [0.95, 0.90, 0.85, 0.30, 0.20, 0.10];
        let vars = [0.05, 0.09, 0.13, 0.21, 0.16, 0.09];
        let total = 6 * 35;
        let a = allocate(&means, &vars, total).unwrap();
        let good: usize = a[..3].iter().sum();
        let bad: usize = a[3..].iter().sum();
        assert!(
            good as f64 / total as f64 > 0.6,
            "good designs should receive most of the budget: {a:?}"
        );
        assert!(bad < good);
    }

    #[test]
    fn ties_are_regularised_not_fatal() {
        let means = [0.5, 0.5, 0.5];
        let vars = [0.25, 0.25, 0.25];
        let a = allocate(&means, &vars, 99).unwrap();
        assert_eq!(a.iter().sum::<usize>(), 99);
        // Roughly uniform under complete symmetry.
        for &ai in &a {
            assert!(ai > 10);
        }
    }

    #[test]
    fn zero_variance_designs_do_not_panic() {
        let means = [1.0, 0.9, 0.5];
        let vars = [0.0, 0.0, 0.0];
        let a = allocate(&means, &vars, 30).unwrap();
        assert_eq!(a.iter().sum::<usize>(), 30);
    }

    #[test]
    fn incremental_allocation_tops_up_underfunded_designs() {
        let stats = vec![
            DesignStats::new(0.9, 0.09, 50),
            DesignStats::new(0.88, 0.10, 15),
            DesignStats::new(0.3, 0.21, 15),
        ];
        let add = allocate_incremental(&stats, 60).unwrap();
        assert_eq!(add.iter().sum::<usize>(), 60);
        // The close competitor that is underfunded should receive the most.
        assert!(add[1] >= add[2], "allocation {add:?}");
    }

    #[test]
    fn incremental_handles_overfunded_population() {
        // Everyone already has far more than the target for such a tiny delta.
        let stats = vec![
            DesignStats::new(0.9, 0.01, 1000),
            DesignStats::new(0.2, 0.01, 1000),
        ];
        let add = allocate_incremental(&stats, 5).unwrap();
        assert_eq!(add.iter().sum::<usize>(), 5);
    }

    #[test]
    fn nan_mean_is_never_selected_as_best() {
        // Pre-fix, the NaN mean wins the max_by comparison (partial_cmp
        // returns None -> Equal -> the later element is kept), poisoning
        // every delta and collapsing the allocation to the uniform fallback.
        let a = allocate(&[0.9, 0.7, f64::NAN], &[0.1, 0.1, 0.1], 300).unwrap();
        assert_eq!(a.iter().sum::<usize>(), 300);
        assert_eq!(a[2], 0, "NaN-mean design must receive nothing: {a:?}");
        assert!(
            a[0] > 0 && a[1] > 0,
            "finite designs share the budget: {a:?}"
        );
    }

    #[test]
    fn nan_mean_does_not_poison_the_deltas() {
        // NaN in the *non-best* position: pre-fix the delta of the NaN design
        // is NaN, the weight sum is NaN and every design falls back to the
        // uniform split. Post-fix the finite designs keep their OCBA shares.
        let a = allocate(&[f64::NAN, 0.5, 0.4], &[0.1, 0.04, 0.1], 300).unwrap();
        assert_eq!(a.iter().sum::<usize>(), 300);
        assert_eq!(a[0], 0, "NaN-mean design must receive nothing: {a:?}");
        assert_ne!(a[1], a[2], "finite designs must not be uniform: {a:?}");
        // Infinite means are equally non-finite and equally excluded.
        let b = allocate(&[0.6, f64::INFINITY, 0.5], &[0.1, 0.1, 0.1], 300).unwrap();
        assert_eq!(b[1], 0, "infinite-mean design must receive nothing: {b:?}");
    }

    #[test]
    fn remainder_never_reaches_overfunded_designs() {
        // Design 0 sits far above its OCBA target (an overfunded competitor);
        // every remainder unit of the proportional split must land on a
        // design with a positive shortfall, for any delta.
        for delta in [1, 3, 7, 20, 61, 1000] {
            let stats = vec![
                DesignStats::new(0.9, 0.09, 5000),
                DesignStats::new(0.88, 0.10, 15),
                DesignStats::new(0.86, 0.12, 15),
                DesignStats::new(0.3, 0.21, 15),
            ];
            let add = allocate_incremental(&stats, delta).unwrap();
            assert_eq!(add.iter().sum::<usize>(), delta);
            assert_eq!(
                add[0], 0,
                "overfunded design funded at delta {delta}: {add:?}"
            );
        }
        // At large deltas the f64 proportional split rounds down by more
        // than one unit per design, so the remainder exceeds the number of
        // underfunded designs and the pre-fix full-list cycling wraps around
        // into the overfunded competitor.
        let stats = vec![
            DesignStats::new(0.9, 0.25, 0),
            DesignStats::new(0.2, 0.01, 1_000_000_000_000_000_000),
        ];
        let delta = (1usize << 60) + 127;
        let add = allocate_incremental(&stats, delta).unwrap();
        assert_eq!(add.iter().sum::<usize>(), delta);
        assert_eq!(add[1], 0, "overfunded design funded: {add:?}");
    }

    #[test]
    fn error_display() {
        assert!(OcbaError::ZeroBudget.to_string().contains("budget"));
        assert!(OcbaError::TooFewDesigns { got: 1 }
            .to_string()
            .contains("two"));
    }
}
