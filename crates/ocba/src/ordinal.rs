//! Ordinal-optimization utilities: good-enough subsets and alignment
//! probability.
//!
//! Ordinal optimization (Ho et al.) rests on two tenets quoted by the MOHECO
//! paper: *order converges much faster than value*, and *a good-enough design
//! is much cheaper to find than the exact best*. This module provides the
//! order-level operations used by the first stage of MOHECO: ranking noisy
//! yield estimates, selecting the observed top-`g` subset, and measuring how
//! well the observed subset aligns with the true one (the alignment
//! probability used in OO convergence analysis).

/// Returns the indices of `values` sorted by decreasing value (best first).
///
/// NaNs are ordered last so that a failed estimate can never be ranked best.
pub fn rank_descending(values: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        let va = values[a];
        let vb = values[b];
        match (va.is_nan(), vb.is_nan()) {
            (true, true) => std::cmp::Ordering::Equal,
            (true, false) => std::cmp::Ordering::Greater,
            (false, true) => std::cmp::Ordering::Less,
            (false, false) => vb.partial_cmp(&va).unwrap_or(std::cmp::Ordering::Equal),
        }
    });
    idx
}

/// Returns the indices of the observed top-`g` designs (the *selected set*).
///
/// If `g` exceeds the number of designs, all indices are returned.
pub fn selected_subset(values: &[f64], g: usize) -> Vec<usize> {
    let ranked = rank_descending(values);
    ranked.into_iter().take(g.min(values.len())).collect()
}

/// Alignment level between an observed selection and the true good-enough set:
/// the number of members of `selected` that belong to `good_enough`.
pub fn alignment_level(selected: &[usize], good_enough: &[usize]) -> usize {
    selected.iter().filter(|i| good_enough.contains(i)).count()
}

/// Estimates the alignment probability `P(|S ∩ G| >= k)` by Monte-Carlo over
/// noisy observations.
///
/// `true_values[i]` is the true performance of design `i`; observations are
/// the true value plus zero-mean Gaussian noise with standard deviation
/// `noise_sigma[i]`. The observed top-`g` designs are compared against the
/// true top-`g` designs over `trials` replications using the supplied
/// pseudo-random source `noise` (a closure returning standard-normal draws),
/// so the routine stays independent of any particular RNG crate.
pub fn alignment_probability(
    true_values: &[f64],
    noise_sigma: &[f64],
    g: usize,
    k: usize,
    trials: usize,
    mut noise: impl FnMut() -> f64,
) -> f64 {
    assert_eq!(
        true_values.len(),
        noise_sigma.len(),
        "true values and noise sigmas must have the same length"
    );
    if trials == 0 {
        return 0.0;
    }
    let good = selected_subset(true_values, g);
    let mut hits = 0usize;
    let mut observed = vec![0.0; true_values.len()];
    for _ in 0..trials {
        for (i, o) in observed.iter_mut().enumerate() {
            *o = true_values[i] + noise_sigma[i] * noise();
        }
        let sel = selected_subset(&observed, g);
        if alignment_level(&sel, &good) >= k {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_is_descending() {
        let v = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(rank_descending(&v), vec![1, 3, 2, 0]);
    }

    #[test]
    fn nan_is_ranked_last() {
        let v = [0.5, f64::NAN, 0.9];
        let r = rank_descending(&v);
        assert_eq!(r[0], 2);
        assert_eq!(r[2], 1);
    }

    #[test]
    fn selected_subset_respects_g() {
        let v = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(selected_subset(&v, 2), vec![1, 3]);
        assert_eq!(selected_subset(&v, 10).len(), 4);
        assert!(selected_subset(&v, 0).is_empty());
    }

    #[test]
    fn alignment_level_counts_intersection() {
        assert_eq!(alignment_level(&[1, 3, 5], &[3, 5, 7]), 2);
        assert_eq!(alignment_level(&[], &[1, 2]), 0);
        assert_eq!(alignment_level(&[1], &[]), 0);
    }

    #[test]
    fn alignment_probability_is_one_without_noise() {
        let truth = [0.9, 0.8, 0.4, 0.1];
        let sigma = [0.0; 4];
        let p = alignment_probability(&truth, &sigma, 2, 2, 100, || 0.0);
        assert_eq!(p, 1.0);
    }

    #[test]
    fn alignment_probability_degrades_with_noise() {
        // Deterministic pseudo-noise via a simple LCG so the test is stable.
        let mut state = 12345u64;
        let mut lcg = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Map the top bits to an approximately standard normal value by
            // summing 12 uniforms (Irwin-Hall).
            let mut acc = 0.0;
            for _ in 0..12 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                acc += (state >> 11) as f64 / (1u64 << 53) as f64;
            }
            acc - 6.0
        };
        let truth = [0.52, 0.50, 0.48, 0.46];
        let small = alignment_probability(&truth, &[0.001; 4], 2, 2, 400, &mut lcg);
        let large = alignment_probability(&truth, &[0.5; 4], 2, 2, 400, &mut lcg);
        assert!(small > large, "small noise {small} vs large noise {large}");
        assert!(small > 0.95);
    }

    #[test]
    fn zero_trials_returns_zero() {
        let p = alignment_probability(&[1.0, 0.0], &[0.1, 0.1], 1, 1, 0, || 0.0);
        assert_eq!(p, 0.0);
    }
}
