//! Populations of candidate solutions.

use crate::constraints::feasibility_compare;
use crate::problem::{random_point, Evaluation, Problem};
use rand::Rng;
use std::cmp::Ordering;

/// One candidate solution together with its evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Individual {
    /// Decision-variable vector.
    pub x: Vec<f64>,
    /// Evaluation of `x`.
    pub eval: Evaluation,
}

impl Individual {
    /// Creates an individual.
    pub fn new(x: Vec<f64>, eval: Evaluation) -> Self {
        Self { x, eval }
    }

    /// Returns `true` when the individual satisfies all constraints.
    pub fn is_feasible(&self) -> bool {
        self.eval.is_feasible()
    }
}

/// A population of individuals.
#[derive(Debug, Clone, Default)]
pub struct Population {
    /// The members of the population.
    pub members: Vec<Individual>,
}

impl Population {
    /// Creates an empty population.
    pub fn new() -> Self {
        Self::default()
    }

    /// Initialises a population of `size` random individuals, evaluated on
    /// `problem` as one batch (see [`Problem::evaluate_batch`]).
    pub fn random<P: Problem + ?Sized, R: Rng + ?Sized>(
        problem: &mut P,
        size: usize,
        rng: &mut R,
    ) -> Self {
        let bounds = problem.bounds();
        let xs: Vec<Vec<f64>> = (0..size).map(|_| random_point(&bounds, rng)).collect();
        let evals = problem.evaluate_batch(&xs);
        let members = xs
            .into_iter()
            .zip(evals)
            .map(|(x, eval)| Individual::new(x, eval))
            .collect();
        Self { members }
    }

    /// Number of individuals.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` when the population is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Index of the best individual under the feasibility rules, or `None`
    /// when the population is empty.
    pub fn best_index(&self) -> Option<usize> {
        if self.members.is_empty() {
            return None;
        }
        let mut best = 0;
        for i in 1..self.members.len() {
            if feasibility_compare(&self.members[i].eval, &self.members[best].eval)
                == Ordering::Less
            {
                best = i;
            }
        }
        Some(best)
    }

    /// The best individual, or `None` when the population is empty.
    pub fn best(&self) -> Option<&Individual> {
        self.best_index().map(|i| &self.members[i])
    }

    /// Number of feasible individuals.
    pub fn num_feasible(&self) -> usize {
        self.members.iter().filter(|m| m.is_feasible()).count()
    }

    /// Iterator over the members.
    pub fn iter(&self) -> std::slice::Iter<'_, Individual> {
        self.members.iter()
    }
}

impl FromIterator<Individual> for Population {
    fn from_iter<T: IntoIterator<Item = Individual>>(iter: T) -> Self {
        Self {
            members: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnProblem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sphere_problem() -> FnProblem<impl FnMut(&[f64]) -> Evaluation> {
        FnProblem::new(3, vec![(-5.0, 5.0); 3], |x: &[f64]| {
            Evaluation::feasible(x.iter().map(|v| v * v).sum())
        })
    }

    #[test]
    fn random_population_is_within_bounds_and_evaluated() {
        let mut p = sphere_problem();
        let mut rng = StdRng::seed_from_u64(5);
        let pop = Population::random(&mut p, 20, &mut rng);
        assert_eq!(pop.len(), 20);
        assert!(!pop.is_empty());
        for ind in pop.iter() {
            assert!(ind.x.iter().all(|v| (-5.0..5.0).contains(v)));
            assert!(ind.eval.objective >= 0.0);
        }
    }

    #[test]
    fn best_individual_has_lowest_objective() {
        let mut p = sphere_problem();
        let mut rng = StdRng::seed_from_u64(6);
        let pop = Population::random(&mut p, 30, &mut rng);
        let best = pop.best().unwrap();
        for ind in pop.iter() {
            assert!(best.eval.objective <= ind.eval.objective);
        }
    }

    #[test]
    fn feasibility_dominates_best_selection() {
        let pop: Population = vec![
            Individual::new(vec![0.0], Evaluation::infeasible(0.01)),
            Individual::new(vec![1.0], Evaluation::feasible(99.0)),
        ]
        .into_iter()
        .collect();
        assert_eq!(pop.best_index(), Some(1));
        assert_eq!(pop.num_feasible(), 1);
    }

    #[test]
    fn empty_population_has_no_best() {
        let pop = Population::new();
        assert!(pop.best().is_none());
        assert!(pop.is_empty());
    }
}
