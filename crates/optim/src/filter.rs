//! Trial-candidate filtering for the population engines.
//!
//! Evolutionary engines evaluate every trial vector they generate, even the
//! ones an observer could tell are hopeless. A [`TrialFilter`] is consulted
//! once per generation, *before* the evaluation batch is dispatched: trials
//! it rejects are discarded unevaluated (their parents survive the
//! selection), so an expensive problem — e.g. a Monte-Carlo yield estimate —
//! is only paid for candidates worth measuring.
//!
//! The filter also receives every `(candidate, evaluation)` pair the engine
//! *does* pay for, so an online surrogate (see `moheco-surrogate`) can learn
//! the objective landscape as the run progresses. [`AdmitAll`] is the
//! pass-through used by the unfiltered `run` entry points; engines behave
//! bit-identically under it.

use crate::problem::Evaluation;

/// A per-generation gate over trial candidates.
pub trait TrialFilter {
    /// Verdict per trial vector: `true` evaluates it, `false` discards it
    /// unevaluated (the parent keeps its population slot).
    fn admit(&mut self, generation: usize, trials: &[Vec<f64>]) -> Vec<bool>;

    /// Feedback for every candidate the engine evaluated (initial population
    /// members included), in evaluation order.
    fn observe(&mut self, x: &[f64], eval: &Evaluation) {
        let _ = (x, eval);
    }
}

/// The pass-through filter: every trial is evaluated.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmitAll;

impl TrialFilter for AdmitAll {
    fn admit(&mut self, _generation: usize, trials: &[Vec<f64>]) -> Vec<bool> {
        vec![true; trials.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admit_all_admits_everything() {
        let mut f = AdmitAll;
        assert_eq!(f.admit(3, &[vec![1.0], vec![2.0]]), vec![true, true]);
        // The default observe is a no-op and must not panic.
        f.observe(&[1.0], &Evaluation::feasible(0.0));
    }
}
