//! Differential Evolution (DE).
//!
//! DE (Price & Storn) is the global search engine of MOHECO: a simple
//! differential mutation operator creates trial vectors and a greedy
//! one-to-one selection (here under Deb's feasibility rules) decides whether
//! each trial replaces its parent. The paper uses a population of 50,
//! crossover rate `CR = 0.8` and step size `F = 0.8`.
//!
//! The mutation/crossover operators are exposed as free functions so the
//! MOHECO core (which owns its own generation loop because of the two-stage
//! yield estimation) can reuse exactly the same operators.

use crate::constraints::is_better_or_equal;
use crate::filter::{AdmitAll, TrialFilter};
use crate::population::{Individual, Population};
use crate::problem::{clamp_to_bounds, Problem};
use crate::result::OptimizationResult;
use moheco_obs::{Span, Tracer};
use rand::Rng;

/// Base-vector selection strategy of the DE mutation operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeStrategy {
    /// `DE/rand/1`: the base vector is a random population member.
    Rand1,
    /// `DE/best/1`: the base vector is the current best member (the variant
    /// the paper's "select base vector" step uses to propagate good schemata).
    Best1,
}

/// Configuration of the DE engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeConfig {
    /// Population size (paper: 50).
    pub population_size: usize,
    /// Differential weight `F` (paper: 0.8).
    pub f: f64,
    /// Crossover rate `CR` (paper: 0.8).
    pub cr: f64,
    /// Base-vector strategy.
    pub strategy: DeStrategy,
    /// Maximum number of generations.
    pub max_generations: usize,
    /// Stop when the best objective has not improved for this many
    /// generations (paper: 20). `None` disables the criterion.
    pub stagnation_limit: Option<usize>,
    /// Stop as soon as the best objective reaches this value or better.
    pub target_objective: Option<f64>,
}

impl Default for DeConfig {
    fn default() -> Self {
        Self {
            population_size: 50,
            f: 0.8,
            cr: 0.8,
            strategy: DeStrategy::Best1,
            max_generations: 200,
            stagnation_limit: Some(20),
            target_objective: None,
        }
    }
}

/// Generates the DE mutant (donor) vector for target index `i`.
///
/// # Panics
///
/// Panics if the population has fewer than four members.
pub fn de_mutant<R: Rng + ?Sized>(
    population: &Population,
    target: usize,
    config: &DeConfig,
    bounds: &[(f64, f64)],
    rng: &mut R,
) -> Vec<f64> {
    let n = population.len();
    assert!(n >= 4, "DE needs at least four individuals");
    // Pick three distinct indices different from the target.
    let mut pick = || loop {
        let r = rng.gen_range(0..n);
        if r != target {
            break r;
        }
    };
    let (r1, mut r2, mut r3) = (pick(), pick(), pick());
    while r2 == r1 {
        r2 = pick();
    }
    while r3 == r1 || r3 == r2 {
        r3 = pick();
    }
    let base: &[f64] = match config.strategy {
        DeStrategy::Rand1 => &population.members[r1].x,
        DeStrategy::Best1 => {
            let b = population.best_index().unwrap_or(r1);
            &population.members[b].x
        }
    };
    let a = &population.members[r2].x;
    let b = &population.members[r3].x;
    let mut mutant: Vec<f64> = base
        .iter()
        .zip(a.iter().zip(b.iter()))
        .map(|(&base_j, (&a_j, &b_j))| base_j + config.f * (a_j - b_j))
        .collect();
    clamp_to_bounds(&mut mutant, bounds);
    mutant
}

/// Binomial (uniform) crossover between the target vector and the mutant.
///
/// At least one component is always taken from the mutant.
pub fn de_crossover<R: Rng + ?Sized>(
    target: &[f64],
    mutant: &[f64],
    cr: f64,
    rng: &mut R,
) -> Vec<f64> {
    let d = target.len();
    let forced = rng.gen_range(0..d);
    (0..d)
        .map(|j| {
            if j == forced || rng.gen::<f64>() < cr {
                mutant[j]
            } else {
                target[j]
            }
        })
        .collect()
}

/// The DE optimizer.
#[derive(Debug, Clone)]
pub struct DifferentialEvolution {
    config: DeConfig,
}

impl DifferentialEvolution {
    /// Creates a DE engine with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the population size is below 4 or `f`/`cr` are out of range.
    pub fn new(config: DeConfig) -> Self {
        assert!(config.population_size >= 4, "population must be >= 4");
        assert!(config.f > 0.0 && config.f <= 2.0, "F must be in (0, 2]");
        assert!((0.0..=1.0).contains(&config.cr), "CR must be in [0, 1]");
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DeConfig {
        &self.config
    }

    /// Runs the optimizer on `problem`.
    pub fn run<P: Problem + ?Sized, R: Rng + ?Sized>(
        &self,
        problem: &mut P,
        rng: &mut R,
    ) -> OptimizationResult {
        self.run_filtered(problem, &mut AdmitAll, rng)
    }

    /// [`Self::run`] with a [`TrialFilter`] gating each generation's trial
    /// vectors: rejected trials are discarded unevaluated and their parents
    /// keep their slots. Under [`AdmitAll`] this is bit-identical to
    /// [`Self::run`] (the filter never touches the RNG stream).
    pub fn run_filtered<P: Problem + ?Sized, T: TrialFilter + ?Sized, R: Rng + ?Sized>(
        &self,
        problem: &mut P,
        filter: &mut T,
        rng: &mut R,
    ) -> OptimizationResult {
        self.run_traced_filtered(problem, filter, &Tracer::disabled(), rng)
    }

    /// [`Self::run`] under an observability [`Tracer`]: the whole run becomes
    /// a `"de"` span with one `"generation"` child span per generation, so a
    /// probe-equipped tracer attributes every evaluation to the generation
    /// that spent it. With [`Tracer::disabled`] (what [`Self::run`] passes)
    /// the spans are inert and the run is bit-identical to [`Self::run`].
    pub fn run_traced<P: Problem + ?Sized, R: Rng + ?Sized>(
        &self,
        problem: &mut P,
        tracer: &Tracer,
        rng: &mut R,
    ) -> OptimizationResult {
        self.run_traced_filtered(problem, &mut AdmitAll, tracer, rng)
    }

    /// The fully general entry point: [`Self::run_filtered`] plus the span
    /// instrumentation of [`Self::run_traced`].
    pub fn run_traced_filtered<P, T, R>(
        &self,
        problem: &mut P,
        filter: &mut T,
        tracer: &Tracer,
        rng: &mut R,
    ) -> OptimizationResult
    where
        P: Problem + ?Sized,
        T: TrialFilter + ?Sized,
        R: Rng + ?Sized,
    {
        let _run_span = Span::enter(tracer, "de");
        let bounds = problem.bounds();
        let mut population = Population::random(problem, self.config.population_size, rng);
        for m in &population.members {
            filter.observe(&m.x, &m.eval);
        }
        let mut evaluations = population.len();
        let mut history = Vec::new();
        let mut best_so_far = population.best().cloned();
        let mut stagnation = 0usize;
        let mut generations = 0usize;

        for gen in 0..self.config.max_generations {
            let _gen_span = Span::enter(tracer, "generation");
            generations += 1;
            let mut improved = false;
            // Synchronous (generational) DE: all trial vectors derive from the
            // population as it stood at the start of the generation, so the
            // whole generation can be evaluated as one batch (and, with a
            // batch-capable problem, dispatched in parallel).
            let trials: Vec<Vec<f64>> = (0..population.len())
                .map(|i| {
                    let mutant = de_mutant(&population, i, &self.config, &bounds, rng);
                    de_crossover(&population.members[i].x, &mutant, self.config.cr, rng)
                })
                .collect();
            let admits = filter.admit(gen, &trials);
            debug_assert_eq!(admits.len(), trials.len(), "one verdict per trial");
            // Fast path when nothing was rejected (always the case under
            // [`AdmitAll`]): evaluate the trials in place, no copies.
            let selected_evals = if admits.iter().all(|&keep| keep) {
                problem.evaluate_batch(&trials)
            } else {
                let selected: Vec<Vec<f64>> = trials
                    .iter()
                    .zip(&admits)
                    .filter(|(_, &keep)| keep)
                    .map(|(t, _)| t.clone())
                    .collect();
                problem.evaluate_batch(&selected)
            };
            evaluations += selected_evals.len();
            let mut eval_iter = selected_evals.into_iter();
            for (i, (trial_x, keep)) in trials.into_iter().zip(admits).enumerate() {
                if !keep {
                    continue;
                }
                let trial_eval = eval_iter.next().expect("one evaluation per admitted trial");
                filter.observe(&trial_x, &trial_eval);
                if is_better_or_equal(&trial_eval, &population.members[i].eval) {
                    population.members[i] = Individual::new(trial_x, trial_eval);
                }
            }
            let best = population.best().cloned().expect("non-empty population");
            if let Some(prev) = &best_so_far {
                if is_better_or_equal(&best.eval, &prev.eval)
                    && best.eval.objective < prev.eval.objective - 1e-15
                {
                    improved = true;
                }
                if crate::constraints::feasibility_compare(&best.eval, &prev.eval)
                    == std::cmp::Ordering::Less
                {
                    best_so_far = Some(best.clone());
                }
            } else {
                best_so_far = Some(best.clone());
                improved = true;
            }
            history.push(best_so_far.as_ref().unwrap().eval.objective);

            if improved {
                stagnation = 0;
            } else {
                stagnation += 1;
            }
            if let Some(target) = self.config.target_objective {
                if best_so_far.as_ref().unwrap().eval.is_feasible()
                    && best_so_far.as_ref().unwrap().eval.objective <= target
                {
                    break;
                }
            }
            if let Some(limit) = self.config.stagnation_limit {
                if stagnation >= limit {
                    break;
                }
            }
        }

        OptimizationResult {
            best: best_so_far.expect("population was evaluated"),
            generations,
            evaluations,
            history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Evaluation, FnProblem};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sphere(dim: usize) -> FnProblem<impl FnMut(&[f64]) -> Evaluation> {
        FnProblem::new(dim, vec![(-5.0, 5.0); dim], |x: &[f64]| {
            Evaluation::feasible(x.iter().map(|v| v * v).sum())
        })
    }

    fn rosenbrock() -> FnProblem<impl FnMut(&[f64]) -> Evaluation> {
        FnProblem::new(2, vec![(-2.0, 2.0); 2], |x: &[f64]| {
            let a = 1.0 - x[0];
            let b = x[1] - x[0] * x[0];
            Evaluation::feasible(a * a + 100.0 * b * b)
        })
    }

    /// Constrained problem: minimise x0 + x1 subject to x0*x1 >= 1, x in [0, 10].
    fn constrained() -> FnProblem<impl FnMut(&[f64]) -> Evaluation> {
        FnProblem::new(2, vec![(0.0, 10.0); 2], |x: &[f64]| {
            let violation = (1.0 - x[0] * x[1]).max(0.0);
            if violation > 0.0 {
                Evaluation::new(x[0] + x[1], violation)
            } else {
                Evaluation::feasible(x[0] + x[1])
            }
        })
    }

    #[test]
    fn config_validation() {
        let c = DeConfig {
            population_size: 3,
            ..DeConfig::default()
        };
        assert!(std::panic::catch_unwind(|| DifferentialEvolution::new(c)).is_err());
        let c2 = DeConfig {
            cr: 1.5,
            ..DeConfig::default()
        };
        assert!(std::panic::catch_unwind(|| DifferentialEvolution::new(c2)).is_err());
    }

    #[test]
    fn mutant_stays_in_bounds() {
        let mut problem = sphere(4);
        let mut rng = StdRng::seed_from_u64(9);
        let pop = Population::random(&mut problem, 10, &mut rng);
        let cfg = DeConfig::default();
        let bounds = problem.bounds();
        for i in 0..pop.len() {
            let m = de_mutant(&pop, i, &cfg, &bounds, &mut rng);
            assert!(m.iter().all(|v| (-5.0..=5.0).contains(v)));
        }
    }

    #[test]
    fn crossover_takes_at_least_one_mutant_component() {
        let mut rng = StdRng::seed_from_u64(10);
        let target = vec![0.0; 8];
        let mutant = vec![1.0; 8];
        // Even with CR = 0 one component must come from the mutant.
        let child = de_crossover(&target, &mutant, 0.0, &mut rng);
        assert!(child.contains(&1.0));
        // With CR = 1 every component comes from the mutant.
        let child_full = de_crossover(&target, &mutant, 1.0, &mut rng);
        assert!(child_full.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn de_minimises_sphere() {
        let mut problem = sphere(5);
        let mut rng = StdRng::seed_from_u64(11);
        let de = DifferentialEvolution::new(DeConfig {
            population_size: 30,
            max_generations: 150,
            stagnation_limit: None,
            ..DeConfig::default()
        });
        let result = de.run(&mut problem, &mut rng);
        assert!(
            result.best_objective() < 1e-3,
            "best {}",
            result.best_objective()
        );
        assert!(result.evaluations > 30);
    }

    #[test]
    fn de_minimises_rosenbrock() {
        let mut problem = rosenbrock();
        let mut rng = StdRng::seed_from_u64(12);
        let de = DifferentialEvolution::new(DeConfig {
            population_size: 40,
            max_generations: 300,
            stagnation_limit: None,
            ..DeConfig::default()
        });
        let result = de.run(&mut problem, &mut rng);
        assert!(
            result.best_objective() < 1e-2,
            "best {}",
            result.best_objective()
        );
        assert!((result.best.x[0] - 1.0).abs() < 0.2);
    }

    #[test]
    fn de_satisfies_constraints() {
        let mut problem = constrained();
        let mut rng = StdRng::seed_from_u64(13);
        let de = DifferentialEvolution::new(DeConfig {
            population_size: 30,
            max_generations: 200,
            stagnation_limit: None,
            ..DeConfig::default()
        });
        let result = de.run(&mut problem, &mut rng);
        assert!(result.is_feasible());
        // Optimum is x0 = x1 = 1 with objective 2.
        assert!(
            (result.best_objective() - 2.0).abs() < 0.05,
            "best {}",
            result.best_objective()
        );
    }

    #[test]
    fn stagnation_limit_stops_early() {
        let mut problem = sphere(3);
        let mut rng = StdRng::seed_from_u64(14);
        let de = DifferentialEvolution::new(DeConfig {
            population_size: 20,
            max_generations: 500,
            stagnation_limit: Some(5),
            ..DeConfig::default()
        });
        let result = de.run(&mut problem, &mut rng);
        assert!(result.generations < 500);
    }

    #[test]
    fn target_objective_stops_early() {
        let mut problem = sphere(3);
        let mut rng = StdRng::seed_from_u64(15);
        let de = DifferentialEvolution::new(DeConfig {
            population_size: 20,
            max_generations: 500,
            stagnation_limit: None,
            target_objective: Some(0.5),
            ..DeConfig::default()
        });
        let result = de.run(&mut problem, &mut rng);
        assert!(result.best_objective() <= 0.5);
        assert!(result.generations < 500);
    }

    #[test]
    fn rand1_strategy_also_converges() {
        let mut problem = sphere(4);
        let mut rng = StdRng::seed_from_u64(16);
        let de = DifferentialEvolution::new(DeConfig {
            population_size: 30,
            strategy: DeStrategy::Rand1,
            max_generations: 200,
            stagnation_limit: None,
            ..DeConfig::default()
        });
        let result = de.run(&mut problem, &mut rng);
        assert!(result.best_objective() < 1e-2);
    }

    #[test]
    fn admit_all_filter_matches_unfiltered_run() {
        let run = |filtered: bool| {
            let mut problem = sphere(4);
            let mut rng = StdRng::seed_from_u64(21);
            let de = DifferentialEvolution::new(DeConfig {
                population_size: 12,
                max_generations: 20,
                ..DeConfig::default()
            });
            if filtered {
                de.run_filtered(&mut problem, &mut AdmitAll, &mut rng)
            } else {
                de.run(&mut problem, &mut rng)
            }
        };
        let (a, b) = (run(false), run(true));
        assert_eq!(a.best.x, b.best.x);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn rejected_trials_are_not_evaluated() {
        struct RejectAfterFirst {
            observed: usize,
        }
        impl TrialFilter for RejectAfterFirst {
            fn admit(&mut self, generation: usize, trials: &[Vec<f64>]) -> Vec<bool> {
                vec![generation == 0; trials.len()]
            }
            fn observe(&mut self, _x: &[f64], _eval: &Evaluation) {
                self.observed += 1;
            }
        }
        let mut problem = sphere(3);
        let mut rng = StdRng::seed_from_u64(22);
        let de = DifferentialEvolution::new(DeConfig {
            population_size: 10,
            max_generations: 6,
            stagnation_limit: None,
            ..DeConfig::default()
        });
        let mut filter = RejectAfterFirst { observed: 0 };
        let result = de.run_filtered(&mut problem, &mut filter, &mut rng);
        // Initial population + one admitted generation; the five rejected
        // generations cost nothing.
        assert_eq!(result.evaluations, 10 + 10);
        assert_eq!(filter.observed, 20);
        assert_eq!(result.generations, 6);
    }

    #[test]
    fn history_is_monotone_non_increasing() {
        let mut problem = sphere(4);
        let mut rng = StdRng::seed_from_u64(17);
        let de = DifferentialEvolution::new(DeConfig::default());
        let result = de.run(&mut problem, &mut rng);
        for w in result.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }
}
