//! Memetic coupling of Differential Evolution and Nelder–Mead.
//!
//! The paper's memetic engine departs from the textbook construction in two
//! ways that make it affordable inside an expensive Monte-Carlo loop:
//!
//! 1. the local search is applied **only to the best member** of the DE
//!    population (whose schemata propagate to the next generation through the
//!    `DE/best/1` base vector), never to the whole population;
//! 2. the local search is **triggered adaptively**: only when the best yield
//!    has not improved for 5 consecutive generations does a short (≈10
//!    iteration) Nelder–Mead refinement run, after which control returns to
//!    DE.

use crate::constraints::is_better_or_equal;
use crate::de::{de_crossover, de_mutant, DeConfig};
use crate::filter::{AdmitAll, TrialFilter};
use crate::nelder_mead::{nelder_mead, NelderMeadConfig};
use crate::population::{Individual, Population};
use crate::problem::Problem;
use crate::result::OptimizationResult;
use moheco_obs::{Span, Tracer};
use rand::Rng;

/// Tracks how many consecutive generations the best objective has failed to
/// improve, and decides when the memetic local search should fire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StagnationTracker {
    /// Number of stagnant generations after which the local search triggers.
    pub trigger: usize,
    stagnant: usize,
    last_best: Option<f64>,
    /// Minimum improvement that resets the counter.
    pub tolerance: f64,
}

impl StagnationTracker {
    /// Creates a tracker that triggers after `trigger` stagnant generations.
    pub fn new(trigger: usize) -> Self {
        Self {
            trigger,
            stagnant: 0,
            last_best: None,
            tolerance: 1e-12,
        }
    }

    /// Records the best objective of the current generation and returns
    /// `true` when the local search should be triggered (the counter resets
    /// after firing).
    pub fn update(&mut self, best_objective: f64) -> bool {
        let improved = match self.last_best {
            None => true,
            Some(prev) => best_objective < prev - self.tolerance,
        };
        if improved {
            self.last_best = Some(best_objective);
            self.stagnant = 0;
        } else {
            self.stagnant += 1;
        }
        if self.stagnant >= self.trigger {
            self.stagnant = 0;
            true
        } else {
            false
        }
    }

    /// Number of consecutive stagnant generations currently recorded.
    pub fn stagnant_generations(&self) -> usize {
        self.stagnant
    }
}

/// Configuration of the memetic optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemeticConfig {
    /// The global-search (DE) configuration.
    pub de: DeConfig,
    /// The local-search (Nelder–Mead) configuration.
    pub nm: NelderMeadConfig,
    /// Number of stagnant generations before NM fires (paper: 5).
    pub stagnation_trigger: usize,
}

impl Default for MemeticConfig {
    fn default() -> Self {
        Self {
            de: DeConfig::default(),
            nm: NelderMeadConfig::memetic_default(),
            stagnation_trigger: 5,
        }
    }
}

/// DE + Nelder–Mead memetic optimizer with Deb's feasibility-rule selection.
#[derive(Debug, Clone)]
pub struct MemeticOptimizer {
    config: MemeticConfig,
}

impl MemeticOptimizer {
    /// Creates a memetic optimizer.
    ///
    /// # Panics
    ///
    /// Panics if the embedded DE configuration is invalid (see
    /// [`crate::de::DifferentialEvolution::new`]).
    pub fn new(config: MemeticConfig) -> Self {
        assert!(config.de.population_size >= 4, "population must be >= 4");
        assert!(config.stagnation_trigger >= 1, "trigger must be >= 1");
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemeticConfig {
        &self.config
    }

    /// Runs the memetic optimization on `problem`.
    pub fn run<P: Problem + ?Sized, R: Rng + ?Sized>(
        &self,
        problem: &mut P,
        rng: &mut R,
    ) -> OptimizationResult {
        self.run_filtered(problem, &mut AdmitAll, rng)
    }

    /// [`Self::run`] with a [`TrialFilter`] gating each DE generation's
    /// trial vectors (rejected trials are discarded unevaluated; their
    /// parents survive). The Nelder–Mead refinement is *never* filtered: it
    /// probes a small neighbourhood of the best member, exactly the region a
    /// surrogate is least able to resolve. Under [`AdmitAll`] this is
    /// bit-identical to [`Self::run`].
    pub fn run_filtered<P: Problem + ?Sized, T: TrialFilter + ?Sized, R: Rng + ?Sized>(
        &self,
        problem: &mut P,
        filter: &mut T,
        rng: &mut R,
    ) -> OptimizationResult {
        self.run_traced_filtered(problem, filter, &Tracer::disabled(), rng)
    }

    /// [`Self::run`] under an observability [`Tracer`]: the run becomes a
    /// `"memetic"` span with one `"de_generation"` child per DE generation
    /// and an `"nm_refine"` child for every Nelder–Mead refinement, so a
    /// probe-equipped tracer splits the evaluation budget between global and
    /// local search. With [`Tracer::disabled`] the spans are inert and the
    /// run is bit-identical to [`Self::run`].
    pub fn run_traced<P: Problem + ?Sized, R: Rng + ?Sized>(
        &self,
        problem: &mut P,
        tracer: &Tracer,
        rng: &mut R,
    ) -> OptimizationResult {
        self.run_traced_filtered(problem, &mut AdmitAll, tracer, rng)
    }

    /// The fully general entry point: [`Self::run_filtered`] plus the span
    /// instrumentation of [`Self::run_traced`].
    pub fn run_traced_filtered<P, T, R>(
        &self,
        problem: &mut P,
        filter: &mut T,
        tracer: &Tracer,
        rng: &mut R,
    ) -> OptimizationResult
    where
        P: Problem + ?Sized,
        T: TrialFilter + ?Sized,
        R: Rng + ?Sized,
    {
        let _run_span = Span::enter(tracer, "memetic");
        let bounds = problem.bounds();
        let mut population = Population::random(problem, self.config.de.population_size, rng);
        for m in &population.members {
            filter.observe(&m.x, &m.eval);
        }
        let mut evaluations = population.len();
        let mut history = Vec::new();
        let mut tracker = StagnationTracker::new(self.config.stagnation_trigger);
        let mut best_so_far = population.best().cloned().expect("non-empty population");
        let mut generations = 0usize;
        let mut stagnation_stop = 0usize;

        for gen in 0..self.config.de.max_generations {
            let _gen_span = Span::enter(tracer, "de_generation");
            generations += 1;
            // One synchronous DE generation, evaluated as a single batch so a
            // batch-capable problem can dispatch it in parallel.
            let trials: Vec<Vec<f64>> = (0..population.len())
                .map(|i| {
                    let mutant = de_mutant(&population, i, &self.config.de, &bounds, rng);
                    de_crossover(&population.members[i].x, &mutant, self.config.de.cr, rng)
                })
                .collect();
            let admits = filter.admit(gen, &trials);
            debug_assert_eq!(admits.len(), trials.len(), "one verdict per trial");
            // Fast path when nothing was rejected (always the case under
            // [`AdmitAll`]): evaluate the trials in place, no copies.
            let selected_evals = if admits.iter().all(|&keep| keep) {
                problem.evaluate_batch(&trials)
            } else {
                let selected: Vec<Vec<f64>> = trials
                    .iter()
                    .zip(&admits)
                    .filter(|(_, &keep)| keep)
                    .map(|(t, _)| t.clone())
                    .collect();
                problem.evaluate_batch(&selected)
            };
            evaluations += selected_evals.len();
            let mut eval_iter = selected_evals.into_iter();
            for (i, (trial_x, keep)) in trials.into_iter().zip(admits).enumerate() {
                if !keep {
                    continue;
                }
                let trial_eval = eval_iter.next().expect("one evaluation per admitted trial");
                filter.observe(&trial_x, &trial_eval);
                if is_better_or_equal(&trial_eval, &population.members[i].eval) {
                    population.members[i] = Individual::new(trial_x, trial_eval);
                }
            }

            // Track the global best.
            let gen_best = population.best().cloned().expect("non-empty population");
            let improved =
                crate::constraints::feasibility_compare(&gen_best.eval, &best_so_far.eval)
                    == std::cmp::Ordering::Less;
            if improved {
                best_so_far = gen_best.clone();
                stagnation_stop = 0;
            } else {
                stagnation_stop += 1;
            }

            // Memetic trigger: refine the best member with Nelder–Mead.
            let trigger_value = if gen_best.eval.is_feasible() {
                gen_best.eval.objective
            } else {
                f64::INFINITY
            };
            if tracker.update(trigger_value) && gen_best.eval.is_feasible() {
                let _nm_span = Span::enter(tracer, "nm_refine");
                let best_idx = population.best_index().expect("non-empty population");
                let start = population.members[best_idx].x.clone();
                // Local objective: feasible candidates by objective, infeasible
                // ones pushed away by their violation.
                let mut local_evals = 0usize;
                let nm_result = {
                    let objective = |x: &[f64]| {
                        local_evals += 1;
                        let e = problem.evaluate(x);
                        if e.is_feasible() {
                            e.objective
                        } else {
                            1e9 + e.constraint_violation
                        }
                    };
                    nelder_mead(objective, &start, &bounds, &self.config.nm)
                };
                evaluations += local_evals;
                let refined_eval = problem.evaluate(&nm_result.x);
                evaluations += 1;
                if is_better_or_equal(&refined_eval, &population.members[best_idx].eval) {
                    population.members[best_idx] = Individual::new(nm_result.x, refined_eval);
                    let new_best = population.best().cloned().expect("non-empty population");
                    if crate::constraints::feasibility_compare(&new_best.eval, &best_so_far.eval)
                        == std::cmp::Ordering::Less
                    {
                        best_so_far = new_best;
                        stagnation_stop = 0;
                    }
                }
            }

            history.push(best_so_far.eval.objective);

            if let Some(target) = self.config.de.target_objective {
                if best_so_far.eval.is_feasible() && best_so_far.eval.objective <= target {
                    break;
                }
            }
            if let Some(limit) = self.config.de.stagnation_limit {
                if stagnation_stop >= limit {
                    break;
                }
            }
        }

        OptimizationResult {
            best: best_so_far,
            generations,
            evaluations,
            history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Evaluation, FnProblem};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stagnation_tracker_counts_and_fires() {
        let mut t = StagnationTracker::new(3);
        assert!(!t.update(10.0)); // first value = improvement
        assert!(!t.update(10.0));
        assert!(!t.update(10.0));
        assert!(t.update(10.0)); // third stagnant generation fires
        assert_eq!(t.stagnant_generations(), 0); // reset after firing
        assert!(!t.update(9.0)); // improvement resets
        assert!(!t.update(9.5));
        assert!(!t.update(9.5));
        assert!(t.update(9.5));
    }

    #[test]
    fn admit_all_filter_matches_unfiltered_run() {
        let make_problem = || {
            FnProblem::new(3, vec![(-3.0, 3.0); 3], |x: &[f64]| {
                Evaluation::feasible(x.iter().map(|v| v * v).sum())
            })
        };
        let config = MemeticConfig {
            de: DeConfig {
                population_size: 10,
                max_generations: 15,
                ..DeConfig::default()
            },
            ..MemeticConfig::default()
        };
        let run = |filtered: bool| {
            let mut problem = make_problem();
            let mut rng = StdRng::seed_from_u64(31);
            let optimizer = MemeticOptimizer::new(config);
            if filtered {
                optimizer.run_filtered(&mut problem, &mut AdmitAll, &mut rng)
            } else {
                optimizer.run(&mut problem, &mut rng)
            }
        };
        let (a, b) = (run(false), run(true));
        assert_eq!(a.best.x, b.best.x);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn rejected_trials_are_not_evaluated() {
        struct RejectAfterFirst {
            observed: usize,
        }
        impl TrialFilter for RejectAfterFirst {
            fn admit(&mut self, generation: usize, trials: &[Vec<f64>]) -> Vec<bool> {
                vec![generation == 0; trials.len()]
            }
            fn observe(&mut self, _x: &[f64], _eval: &Evaluation) {
                self.observed += 1;
            }
        }
        let mut problem = FnProblem::new(2, vec![(-1.0, 1.0); 2], |x: &[f64]| {
            Evaluation::feasible(x[0] * x[0] + x[1] * x[1])
        });
        let mut rng = StdRng::seed_from_u64(32);
        let optimizer = MemeticOptimizer::new(MemeticConfig {
            de: DeConfig {
                population_size: 8,
                max_generations: 4,
                stagnation_limit: None,
                ..DeConfig::default()
            },
            // A high trigger keeps the (unfiltered) Nelder-Mead refinement
            // out of the evaluation count.
            stagnation_trigger: 100,
            ..MemeticConfig::default()
        });
        let mut filter = RejectAfterFirst { observed: 0 };
        let result = optimizer.run_filtered(&mut problem, &mut filter, &mut rng);
        // Initial population + one admitted generation; the three rejected
        // generations cost nothing.
        assert_eq!(result.evaluations, 8 + 8);
        assert_eq!(filter.observed, 16);
    }

    #[test]
    fn memetic_minimises_rosenbrock_faster_than_pure_de() {
        let make_problem = || {
            FnProblem::new(4, vec![(-2.0, 2.0); 4], |x: &[f64]| {
                let mut s = 0.0;
                for i in 0..3 {
                    let a = 1.0 - x[i];
                    let b = x[i + 1] - x[i] * x[i];
                    s += a * a + 100.0 * b * b;
                }
                Evaluation::feasible(s)
            })
        };
        let budget = 60;
        let mut de_best = Vec::new();
        let mut mem_best = Vec::new();
        for seed in 0..3u64 {
            let de = crate::de::DifferentialEvolution::new(DeConfig {
                population_size: 30,
                max_generations: budget,
                stagnation_limit: None,
                ..DeConfig::default()
            });
            let mut p = make_problem();
            de_best.push(
                de.run(&mut p, &mut StdRng::seed_from_u64(seed))
                    .best_objective(),
            );

            let memetic = MemeticOptimizer::new(MemeticConfig {
                de: DeConfig {
                    population_size: 30,
                    max_generations: budget,
                    stagnation_limit: None,
                    ..DeConfig::default()
                },
                nm: NelderMeadConfig::memetic_default(),
                stagnation_trigger: 5,
            });
            let mut p2 = make_problem();
            mem_best.push(
                memetic
                    .run(&mut p2, &mut StdRng::seed_from_u64(seed))
                    .best_objective(),
            );
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        // The memetic variant should not be worse on average.
        assert!(
            avg(&mem_best) <= avg(&de_best) * 1.5,
            "memetic {mem_best:?} vs de {de_best:?}"
        );
    }

    #[test]
    fn memetic_handles_constraints() {
        let mut problem = FnProblem::new(2, vec![(0.0, 10.0); 2], |x: &[f64]| {
            let violation = (1.0 - x[0] * x[1]).max(0.0);
            if violation > 0.0 {
                Evaluation::new(x[0] + x[1], violation)
            } else {
                Evaluation::feasible(x[0] + x[1])
            }
        });
        let optimizer = MemeticOptimizer::new(MemeticConfig {
            de: DeConfig {
                population_size: 25,
                max_generations: 150,
                stagnation_limit: None,
                ..DeConfig::default()
            },
            ..MemeticConfig::default()
        });
        let result = optimizer.run(&mut problem, &mut StdRng::seed_from_u64(3));
        assert!(result.is_feasible());
        assert!((result.best_objective() - 2.0).abs() < 0.1);
    }

    #[test]
    fn memetic_stops_on_target() {
        let mut problem = FnProblem::new(3, vec![(-5.0, 5.0); 3], |x: &[f64]| {
            Evaluation::feasible(x.iter().map(|v| v * v).sum())
        });
        let optimizer = MemeticOptimizer::new(MemeticConfig {
            de: DeConfig {
                population_size: 20,
                max_generations: 300,
                target_objective: Some(1e-3),
                stagnation_limit: None,
                ..DeConfig::default()
            },
            ..MemeticConfig::default()
        });
        let result = optimizer.run(&mut problem, &mut StdRng::seed_from_u64(4));
        assert!(result.best_objective() <= 1e-3);
        assert!(result.generations < 300);
    }

    #[test]
    #[should_panic]
    fn zero_trigger_is_rejected() {
        let _ = MemeticOptimizer::new(MemeticConfig {
            stagnation_trigger: 0,
            ..MemeticConfig::default()
        });
    }
}
