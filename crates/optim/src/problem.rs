//! Optimization-problem abstractions shared by every search engine in the
//! workspace.
//!
//! All engines minimise the objective. Yield optimization maximises yield, so
//! the MOHECO layers report `objective = -yield`. Constraints are aggregated
//! into a single non-negative violation value (0 = feasible), matching the
//! selection-based constraint handling of Deb (2000) used in the paper.

use rand::Rng;

/// The outcome of evaluating one candidate solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Objective value to be minimised.
    pub objective: f64,
    /// Aggregate constraint violation; `0.0` means feasible.
    pub constraint_violation: f64,
}

impl Evaluation {
    /// Creates an evaluation.
    pub fn new(objective: f64, constraint_violation: f64) -> Self {
        Self {
            objective,
            constraint_violation: constraint_violation.max(0.0),
        }
    }

    /// A feasible evaluation with the given objective.
    pub fn feasible(objective: f64) -> Self {
        Self::new(objective, 0.0)
    }

    /// An infeasible evaluation with the given violation; the objective is set
    /// to infinity so it can never win against a feasible candidate on value.
    pub fn infeasible(constraint_violation: f64) -> Self {
        Self::new(f64::INFINITY, constraint_violation)
    }

    /// Returns `true` when the candidate satisfies all constraints.
    pub fn is_feasible(&self) -> bool {
        self.constraint_violation <= 0.0
    }
}

/// A box-constrained, possibly noisy optimization problem.
pub trait Problem {
    /// Number of decision variables.
    fn dimension(&self) -> usize;

    /// Lower/upper bounds of each decision variable.
    fn bounds(&self) -> Vec<(f64, f64)>;

    /// Evaluates one candidate.
    fn evaluate(&mut self, x: &[f64]) -> Evaluation;

    /// Evaluates a whole generation of candidates at once.
    ///
    /// Every population-based engine in this crate (DE, GA, the memetic
    /// coupling) routes its per-generation evaluations through this method,
    /// so problems backed by a batch-capable evaluator — such as the
    /// `moheco-runtime` simulation engine — can dispatch the generation in
    /// parallel. The default implementation evaluates serially, one by one,
    /// which keeps plain closure-backed problems unchanged.
    fn evaluate_batch(&mut self, xs: &[Vec<f64>]) -> Vec<Evaluation> {
        xs.iter().map(|x| self.evaluate(x)).collect()
    }
}

/// A problem defined by closures; convenient for tests and benchmarks.
pub struct FnProblem<F> {
    dimension: usize,
    bounds: Vec<(f64, f64)>,
    f: F,
}

impl<F> FnProblem<F>
where
    F: FnMut(&[f64]) -> Evaluation,
{
    /// Creates a closure-backed problem.
    ///
    /// # Panics
    ///
    /// Panics if `bounds.len() != dimension` or any bound is inverted.
    pub fn new(dimension: usize, bounds: Vec<(f64, f64)>, f: F) -> Self {
        assert_eq!(bounds.len(), dimension, "one bound pair per dimension");
        for (lo, hi) in &bounds {
            assert!(hi > lo, "bounds must satisfy hi > lo");
        }
        Self {
            dimension,
            bounds,
            f,
        }
    }
}

impl<F> Problem for FnProblem<F>
where
    F: FnMut(&[f64]) -> Evaluation,
{
    fn dimension(&self) -> usize {
        self.dimension
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        self.bounds.clone()
    }

    fn evaluate(&mut self, x: &[f64]) -> Evaluation {
        (self.f)(x)
    }
}

/// Draws a uniformly random point inside the given bounds.
pub fn random_point<R: Rng + ?Sized>(bounds: &[(f64, f64)], rng: &mut R) -> Vec<f64> {
    bounds
        .iter()
        .map(|&(lo, hi)| lo + (hi - lo) * rng.gen::<f64>())
        .collect()
}

/// Clamps a point into the given bounds, component-wise.
pub fn clamp_to_bounds(x: &mut [f64], bounds: &[(f64, f64)]) {
    for (xi, &(lo, hi)) in x.iter_mut().zip(bounds) {
        *xi = xi.clamp(lo, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn evaluation_constructors() {
        let f = Evaluation::feasible(1.5);
        assert!(f.is_feasible());
        assert_eq!(f.objective, 1.5);
        let i = Evaluation::infeasible(3.0);
        assert!(!i.is_feasible());
        assert!(i.objective.is_infinite());
        // Negative violations are clamped to zero.
        let c = Evaluation::new(1.0, -2.0);
        assert!(c.is_feasible());
    }

    #[test]
    fn fn_problem_roundtrip() {
        let mut p = FnProblem::new(2, vec![(-1.0, 1.0), (0.0, 2.0)], |x: &[f64]| {
            Evaluation::feasible(x[0] * x[0] + x[1])
        });
        assert_eq!(p.dimension(), 2);
        assert_eq!(p.bounds().len(), 2);
        let e = p.evaluate(&[0.5, 1.0]);
        assert!((e.objective - 1.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn inverted_bounds_panic() {
        let _ = FnProblem::new(1, vec![(1.0, -1.0)], |_x: &[f64]| Evaluation::feasible(0.0));
    }

    #[test]
    fn random_point_respects_bounds() {
        let bounds = vec![(-2.0, -1.0), (5.0, 6.0)];
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let p = random_point(&bounds, &mut rng);
            assert!(p[0] >= -2.0 && p[0] < -1.0);
            assert!(p[1] >= 5.0 && p[1] < 6.0);
        }
    }

    #[test]
    fn clamp_pushes_points_inside() {
        let bounds = vec![(0.0, 1.0), (0.0, 1.0)];
        let mut x = vec![-0.5, 2.0];
        clamp_to_bounds(&mut x, &bounds);
        assert_eq!(x, vec![0.0, 1.0]);
    }
}
