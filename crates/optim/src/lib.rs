//! `moheco-optim` — search-engine substrate of the MOHECO reproduction.
//!
//! MOHECO's search machinery combines several classical components, each of
//! which is provided (and unit-tested) here independently of the yield
//! problem so they can be reused and benchmarked on analytic test functions:
//!
//! * [`de`] — Differential Evolution (`DE/best/1/bin` and `DE/rand/1/bin`)
//!   with the paper's parameters (population 50, `F = CR = 0.8`). The
//!   mutation and crossover operators are exposed as free functions so the
//!   MOHECO core can drive its own generation loop.
//! * [`nelder_mead`](mod@nelder_mead) — the derivative-free simplex local search used as the
//!   memetic exploitation operator.
//! * [`constraints`] — Deb's selection-based feasibility rules.
//! * [`memetic`] — the adaptive DE + Nelder–Mead coupling (local search only
//!   on the best member, only after 5 stagnant generations).
//! * [`ga`] / [`penalty`] — the genetic-algorithm and penalty-function
//!   baselines the paper compares against.
//!
//! # Example
//!
//! ```
//! use moheco_optim::de::{DeConfig, DifferentialEvolution};
//! use moheco_optim::problem::{Evaluation, FnProblem};
//! use rand::SeedableRng;
//!
//! let mut sphere = FnProblem::new(3, vec![(-5.0, 5.0); 3], |x: &[f64]| {
//!     Evaluation::feasible(x.iter().map(|v| v * v).sum())
//! });
//! let de = DifferentialEvolution::new(DeConfig::default());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let result = de.run(&mut sphere, &mut rng);
//! assert!(result.best_objective() < 1e-2);
//! ```

#![warn(missing_docs)]

pub mod constraints;
pub mod de;
pub mod filter;
pub mod ga;
pub mod memetic;
pub mod nelder_mead;
pub mod penalty;
pub mod population;
pub mod problem;
pub mod result;

pub use constraints::{aggregate_violations, best_index, feasibility_compare, is_better_or_equal};
pub use de::{de_crossover, de_mutant, DeConfig, DeStrategy, DifferentialEvolution};
pub use filter::{AdmitAll, TrialFilter};
pub use ga::{GaConfig, GeneticAlgorithm};
pub use memetic::{MemeticConfig, MemeticOptimizer, StagnationTracker};
pub use nelder_mead::{nelder_mead, NelderMeadConfig, NelderMeadResult};
pub use penalty::PenaltyProblem;
pub use population::{Individual, Population};
pub use problem::{clamp_to_bounds, random_point, Evaluation, FnProblem, Problem};
pub use result::OptimizationResult;
