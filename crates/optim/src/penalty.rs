//! Penalty-function constraint handling (baseline).
//!
//! The paper mentions "differential evolution plus penalty function" as one of
//! the engines that fails to meet the severe specifications of example 2.
//! The wrapper here converts a constrained [`Problem`] into an unconstrained
//! one by adding `k * violation` to the objective, so any engine can be run
//! in "penalty mode" and compared against the selection-based handling.

use crate::problem::{Evaluation, Problem};

/// Wraps a constrained problem, folding the constraint violation into the
/// objective with a fixed penalty coefficient.
pub struct PenaltyProblem<P> {
    inner: P,
    coefficient: f64,
}

impl<P: Problem> PenaltyProblem<P> {
    /// Wraps `inner` with penalty coefficient `coefficient`.
    ///
    /// # Panics
    ///
    /// Panics if the coefficient is not strictly positive.
    pub fn new(inner: P, coefficient: f64) -> Self {
        assert!(coefficient > 0.0, "penalty coefficient must be positive");
        Self { inner, coefficient }
    }

    /// Returns the wrapped problem.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// The penalty coefficient.
    pub fn coefficient(&self) -> f64 {
        self.coefficient
    }
}

impl<P: Problem> Problem for PenaltyProblem<P> {
    fn dimension(&self) -> usize {
        self.inner.dimension()
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        self.inner.bounds()
    }

    fn evaluate(&mut self, x: &[f64]) -> Evaluation {
        let e = self.inner.evaluate(x);
        self.penalise(e)
    }

    fn evaluate_batch(&mut self, xs: &[Vec<f64>]) -> Vec<Evaluation> {
        // Forward the whole batch so an engine-backed inner problem keeps
        // its batched (parallel) dispatch.
        self.inner
            .evaluate_batch(xs)
            .into_iter()
            .map(|e| self.penalise(e))
            .collect()
    }
}

impl<P: Problem> PenaltyProblem<P> {
    fn penalise(&self, e: Evaluation) -> Evaluation {
        if e.is_feasible() {
            Evaluation::feasible(e.objective)
        } else {
            // The raw objective may be infinite for infeasible candidates
            // (see `Evaluation::infeasible`); penalise from zero in that case
            // so the penalty landscape stays finite and searchable.
            let base = if e.objective.is_finite() {
                e.objective
            } else {
                0.0
            };
            Evaluation::feasible(base + self.coefficient * e.constraint_violation)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::de::{DeConfig, DifferentialEvolution};
    use crate::problem::FnProblem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn constrained() -> FnProblem<impl FnMut(&[f64]) -> Evaluation> {
        // Minimise x0 + x1 subject to x0 * x1 >= 1 on [0, 10]^2 (optimum 2).
        FnProblem::new(2, vec![(0.0, 10.0); 2], |x: &[f64]| {
            let violation = (1.0 - x[0] * x[1]).max(0.0);
            Evaluation::new(x[0] + x[1], violation)
        })
    }

    #[test]
    fn wrapper_reports_always_feasible() {
        let mut p = PenaltyProblem::new(constrained(), 100.0);
        let e = p.evaluate(&[0.1, 0.1]);
        assert!(e.is_feasible());
        assert!(e.objective > 0.2, "penalty must be added: {}", e.objective);
        assert_eq!(p.dimension(), 2);
        assert_eq!(p.coefficient(), 100.0);
    }

    #[test]
    fn feasible_points_are_not_penalised() {
        let mut p = PenaltyProblem::new(constrained(), 100.0);
        let e = p.evaluate(&[2.0, 2.0]);
        assert!((e.objective - 4.0).abs() < 1e-12);
    }

    #[test]
    fn infinite_raw_objective_is_regularised() {
        let inner = FnProblem::new(1, vec![(0.0, 1.0)], |x: &[f64]| {
            Evaluation::infeasible(x[0] + 1.0)
        });
        let mut p = PenaltyProblem::new(inner, 10.0);
        let e = p.evaluate(&[0.5]);
        assert!(e.objective.is_finite());
        assert!((e.objective - 15.0).abs() < 1e-12);
    }

    #[test]
    fn de_with_penalty_solves_the_constrained_problem() {
        let mut p = PenaltyProblem::new(constrained(), 1e3);
        let de = DifferentialEvolution::new(DeConfig {
            population_size: 30,
            max_generations: 200,
            stagnation_limit: None,
            ..DeConfig::default()
        });
        let result = de.run(&mut p, &mut StdRng::seed_from_u64(31));
        // Check the unpenalised feasibility of the found point.
        let x = &result.best.x;
        assert!(x[0] * x[1] >= 0.95, "constraint nearly satisfied: {x:?}");
        assert!((x[0] + x[1] - 2.0).abs() < 0.2);
    }

    #[test]
    #[should_panic]
    fn zero_coefficient_is_rejected() {
        let _ = PenaltyProblem::new(constrained(), 0.0);
    }
}
