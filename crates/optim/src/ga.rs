//! A real-coded genetic algorithm baseline.
//!
//! The paper compares its DE-based engine against a genetic algorithm on the
//! nominal sizing of example 2 (where the GA fails to meet the severe
//! specifications within the generation budget). This module provides the
//! baseline: tournament selection under Deb's feasibility rules, BLX-α
//! crossover, Gaussian mutation and single-member elitism.

use crate::constraints::feasibility_compare;
use crate::filter::{AdmitAll, TrialFilter};
use crate::population::{Individual, Population};
use crate::problem::{clamp_to_bounds, Problem};
use crate::result::OptimizationResult;
use moheco_obs::{Span, Tracer};
use rand::Rng;
use std::cmp::Ordering;

/// Configuration of the genetic-algorithm baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaConfig {
    /// Population size.
    pub population_size: usize,
    /// Crossover probability.
    pub crossover_rate: f64,
    /// BLX-α blending parameter.
    pub blx_alpha: f64,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Mutation standard deviation as a fraction of the variable range.
    pub mutation_sigma: f64,
    /// Tournament size.
    pub tournament_size: usize,
    /// Maximum number of generations.
    pub max_generations: usize,
    /// Stop when the best objective has not improved for this many generations.
    pub stagnation_limit: Option<usize>,
    /// Stop as soon as a feasible objective at or below this value is found.
    pub target_objective: Option<f64>,
}

impl Default for GaConfig {
    fn default() -> Self {
        Self {
            population_size: 50,
            crossover_rate: 0.9,
            blx_alpha: 0.3,
            mutation_rate: 0.1,
            mutation_sigma: 0.1,
            tournament_size: 2,
            max_generations: 200,
            stagnation_limit: Some(20),
            target_objective: None,
        }
    }
}

/// The genetic-algorithm optimizer.
#[derive(Debug, Clone)]
pub struct GeneticAlgorithm {
    config: GaConfig,
}

impl GeneticAlgorithm {
    /// Creates a GA with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the population size is below 4 or probabilities are out of range.
    pub fn new(config: GaConfig) -> Self {
        assert!(config.population_size >= 4, "population must be >= 4");
        assert!((0.0..=1.0).contains(&config.crossover_rate));
        assert!((0.0..=1.0).contains(&config.mutation_rate));
        assert!(config.tournament_size >= 1);
        Self { config }
    }

    fn tournament<'a, R: Rng + ?Sized>(
        &self,
        population: &'a Population,
        rng: &mut R,
    ) -> &'a Individual {
        let n = population.len();
        let mut best = &population.members[rng.gen_range(0..n)];
        for _ in 1..self.config.tournament_size {
            let challenger = &population.members[rng.gen_range(0..n)];
            if feasibility_compare(&challenger.eval, &best.eval) == Ordering::Less {
                best = challenger;
            }
        }
        best
    }

    fn blx_crossover<R: Rng + ?Sized>(
        &self,
        a: &[f64],
        b: &[f64],
        bounds: &[(f64, f64)],
        rng: &mut R,
    ) -> Vec<f64> {
        let alpha = self.config.blx_alpha;
        let mut child: Vec<f64> = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| {
                let lo = x.min(y);
                let hi = x.max(y);
                let range = (hi - lo).max(1e-15);
                let lower = lo - alpha * range;
                let upper = hi + alpha * range;
                lower + (upper - lower) * rng.gen::<f64>()
            })
            .collect();
        clamp_to_bounds(&mut child, bounds);
        child
    }

    fn mutate<R: Rng + ?Sized>(&self, x: &mut [f64], bounds: &[(f64, f64)], rng: &mut R) {
        for (xi, &(lo, hi)) in x.iter_mut().zip(bounds) {
            if rng.gen::<f64>() < self.config.mutation_rate {
                let span = hi - lo;
                // Box-Muller normal draw.
                let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                *xi += z * self.config.mutation_sigma * span;
            }
        }
        clamp_to_bounds(x, bounds);
    }

    /// Runs the GA on `problem`.
    pub fn run<P: Problem + ?Sized, R: Rng + ?Sized>(
        &self,
        problem: &mut P,
        rng: &mut R,
    ) -> OptimizationResult {
        self.run_filtered(problem, &mut AdmitAll, rng)
    }

    /// [`Self::run`] with a [`TrialFilter`] gating each generation's brood:
    /// rejected children are discarded unevaluated and their first parent
    /// inherits the population slot. Under [`AdmitAll`] this is bit-identical
    /// to [`Self::run`] (the filter never touches the RNG stream).
    pub fn run_filtered<P: Problem + ?Sized, T: TrialFilter + ?Sized, R: Rng + ?Sized>(
        &self,
        problem: &mut P,
        filter: &mut T,
        rng: &mut R,
    ) -> OptimizationResult {
        self.run_traced_filtered(problem, filter, &Tracer::disabled(), rng)
    }

    /// [`Self::run`] under an observability [`Tracer`]: the whole run becomes
    /// a `"ga"` span with one `"generation"` child span per generation. With
    /// [`Tracer::disabled`] the spans are inert and the run is bit-identical
    /// to [`Self::run`].
    pub fn run_traced<P: Problem + ?Sized, R: Rng + ?Sized>(
        &self,
        problem: &mut P,
        tracer: &Tracer,
        rng: &mut R,
    ) -> OptimizationResult {
        self.run_traced_filtered(problem, &mut AdmitAll, tracer, rng)
    }

    /// The fully general entry point: [`Self::run_filtered`] plus the span
    /// instrumentation of [`Self::run_traced`].
    pub fn run_traced_filtered<P, T, R>(
        &self,
        problem: &mut P,
        filter: &mut T,
        tracer: &Tracer,
        rng: &mut R,
    ) -> OptimizationResult
    where
        P: Problem + ?Sized,
        T: TrialFilter + ?Sized,
        R: Rng + ?Sized,
    {
        let _run_span = Span::enter(tracer, "ga");
        let bounds = problem.bounds();
        let mut population = Population::random(problem, self.config.population_size, rng);
        for m in &population.members {
            filter.observe(&m.x, &m.eval);
        }
        let mut evaluations = population.len();
        let mut best_so_far = population.best().cloned().expect("non-empty population");
        let mut history = Vec::new();
        let mut stagnation = 0usize;
        let mut generations = 0usize;

        for gen in 0..self.config.max_generations {
            let _gen_span = Span::enter(tracer, "generation");
            generations += 1;
            // Offspring derive from the previous population only, so the
            // whole brood is generated first and evaluated as one batch.
            let mut children = Vec::with_capacity(population.len().saturating_sub(1));
            let mut parents = Vec::with_capacity(population.len().saturating_sub(1));
            while children.len() + 1 < population.len() {
                let p1 = self.tournament(&population, rng).clone();
                let p2 = self.tournament(&population, rng).clone();
                let mut child_x = if rng.gen::<f64>() < self.config.crossover_rate {
                    self.blx_crossover(&p1.x, &p2.x, &bounds, rng)
                } else {
                    p1.x.clone()
                };
                self.mutate(&mut child_x, &bounds, rng);
                children.push(child_x);
                parents.push(p1);
            }
            let admits = filter.admit(gen, &children);
            debug_assert_eq!(admits.len(), children.len(), "one verdict per child");
            // Fast path when nothing was rejected (always the case under
            // [`AdmitAll`]): evaluate the brood in place, no copies.
            let selected_evals = if admits.iter().all(|&keep| keep) {
                problem.evaluate_batch(&children)
            } else {
                let selected: Vec<Vec<f64>> = children
                    .iter()
                    .zip(&admits)
                    .filter(|(_, &keep)| keep)
                    .map(|(c, _)| c.clone())
                    .collect();
                problem.evaluate_batch(&selected)
            };
            evaluations += selected_evals.len();
            // Elitism: keep the best member; rejected children fall back to
            // their (already evaluated) first parent.
            let mut next = Vec::with_capacity(population.len());
            next.push(best_so_far.clone());
            let mut eval_iter = selected_evals.into_iter();
            for ((x, keep), parent) in children.into_iter().zip(admits).zip(parents) {
                if keep {
                    let eval = eval_iter.next().expect("one evaluation per admitted child");
                    filter.observe(&x, &eval);
                    next.push(Individual::new(x, eval));
                } else {
                    next.push(parent);
                }
            }
            population = next.into_iter().collect();

            let gen_best = population.best().cloned().expect("non-empty population");
            if feasibility_compare(&gen_best.eval, &best_so_far.eval) == Ordering::Less {
                best_so_far = gen_best;
                stagnation = 0;
            } else {
                stagnation += 1;
            }
            history.push(best_so_far.eval.objective);

            if let Some(target) = self.config.target_objective {
                if best_so_far.eval.is_feasible() && best_so_far.eval.objective <= target {
                    break;
                }
            }
            if let Some(limit) = self.config.stagnation_limit {
                if stagnation >= limit {
                    break;
                }
            }
        }

        OptimizationResult {
            best: best_so_far,
            generations,
            evaluations,
            history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Evaluation, FnProblem};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ga_minimises_sphere() {
        let mut problem = FnProblem::new(4, vec![(-5.0, 5.0); 4], |x: &[f64]| {
            Evaluation::feasible(x.iter().map(|v| v * v).sum())
        });
        let ga = GeneticAlgorithm::new(GaConfig {
            population_size: 40,
            max_generations: 200,
            stagnation_limit: None,
            ..GaConfig::default()
        });
        let result = ga.run(&mut problem, &mut StdRng::seed_from_u64(21));
        assert!(
            result.best_objective() < 0.1,
            "best {}",
            result.best_objective()
        );
    }

    #[test]
    fn ga_handles_constraints() {
        let mut problem = FnProblem::new(2, vec![(0.0, 10.0); 2], |x: &[f64]| {
            let violation = (1.0 - x[0] * x[1]).max(0.0);
            if violation > 0.0 {
                Evaluation::new(x[0] + x[1], violation)
            } else {
                Evaluation::feasible(x[0] + x[1])
            }
        });
        let ga = GeneticAlgorithm::new(GaConfig {
            population_size: 40,
            max_generations: 200,
            stagnation_limit: None,
            ..GaConfig::default()
        });
        let result = ga.run(&mut problem, &mut StdRng::seed_from_u64(22));
        assert!(result.is_feasible());
        assert!(result.best_objective() < 3.0);
    }

    #[test]
    fn elitism_makes_history_monotone() {
        let mut problem = FnProblem::new(3, vec![(-5.0, 5.0); 3], |x: &[f64]| {
            Evaluation::feasible(x.iter().map(|v| v * v).sum())
        });
        let ga = GeneticAlgorithm::new(GaConfig::default());
        let result = ga.run(&mut problem, &mut StdRng::seed_from_u64(23));
        for w in result.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn target_objective_stops_ga_early() {
        let mut problem = FnProblem::new(2, vec![(-5.0, 5.0); 2], |x: &[f64]| {
            Evaluation::feasible(x.iter().map(|v| v * v).sum())
        });
        let ga = GeneticAlgorithm::new(GaConfig {
            target_objective: Some(1.0),
            max_generations: 500,
            stagnation_limit: None,
            ..GaConfig::default()
        });
        let result = ga.run(&mut problem, &mut StdRng::seed_from_u64(24));
        assert!(result.best_objective() <= 1.0);
        assert!(result.generations < 500);
    }

    #[test]
    #[should_panic]
    fn invalid_config_is_rejected() {
        let _ = GeneticAlgorithm::new(GaConfig {
            population_size: 2,
            ..GaConfig::default()
        });
    }
}
