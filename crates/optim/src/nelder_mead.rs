//! The Nelder–Mead simplex method.
//!
//! MOHECO uses Nelder–Mead as the *local* search operator of its memetic
//! engine: when DE stalls, the simplex is started from the best member of the
//! population to refine it (exploitation), then control returns to DE. The
//! method is derivative-free, which matters because the objective (Monte-Carlo
//! yield) is noisy and has no useful gradients.

use crate::problem::clamp_to_bounds;

/// Configuration of the Nelder–Mead search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMeadConfig {
    /// Maximum number of simplex iterations (paper: roughly 10 when used as a
    /// memetic operator).
    pub max_iterations: usize,
    /// Initial simplex step as a fraction of each variable's range.
    pub initial_step: f64,
    /// Convergence tolerance on the objective spread across the simplex.
    pub ftol: f64,
    /// Reflection coefficient (standard: 1).
    pub alpha: f64,
    /// Expansion coefficient (standard: 2).
    pub gamma: f64,
    /// Contraction coefficient (standard: 0.5).
    pub rho: f64,
    /// Shrink coefficient (standard: 0.5).
    pub sigma: f64,
}

impl Default for NelderMeadConfig {
    fn default() -> Self {
        Self {
            max_iterations: 100,
            initial_step: 0.05,
            ftol: 1e-10,
            alpha: 1.0,
            gamma: 2.0,
            rho: 0.5,
            sigma: 0.5,
        }
    }
}

impl NelderMeadConfig {
    /// The short local-refinement budget used inside the memetic engine
    /// (about 10 iterations, as in the paper).
    pub fn memetic_default() -> Self {
        Self {
            max_iterations: 10,
            initial_step: 0.05,
            ftol: 1e-9,
            ..Self::default()
        }
    }
}

/// Result of a Nelder–Mead run.
#[derive(Debug, Clone)]
pub struct NelderMeadResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective at the best point.
    pub objective: f64,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Number of objective evaluations consumed.
    pub evaluations: usize,
}

/// Minimises `f` starting from `x0`, keeping all points inside `bounds`.
///
/// # Panics
///
/// Panics if `x0.len() != bounds.len()` or `x0` is empty.
pub fn nelder_mead<F>(
    mut f: F,
    x0: &[f64],
    bounds: &[(f64, f64)],
    config: &NelderMeadConfig,
) -> NelderMeadResult
where
    F: FnMut(&[f64]) -> f64,
{
    let n = x0.len();
    assert!(n > 0, "cannot optimise a zero-dimensional point");
    assert_eq!(n, bounds.len(), "bounds must match the dimension");

    let mut evaluations = 0usize;
    let mut eval = |x: &[f64], evals: &mut usize| {
        *evals += 1;
        f(x)
    };

    // Build the initial simplex: x0 plus one perturbed vertex per *free*
    // dimension. A zero-span dimension (bounds lo == hi, as produced by a
    // frozen design variable) admits no perturbation — the clamped vertex
    // would land back on x0, a duplicate that silently degenerates the
    // simplex and wastes evaluations — so frozen dimensions are skipped and
    // the simplex dimension shrinks accordingly: m free dimensions give an
    // (m+1)-vertex simplex. Every vertex carries x0's value in the frozen
    // coordinates, so the reflection/contraction arithmetic below never
    // moves them.
    let free: Vec<usize> = (0..n).filter(|&j| bounds[j].1 > bounds[j].0).collect();
    let m = free.len();
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
    simplex.push(x0.to_vec());
    for &j in &free {
        let mut v = x0.to_vec();
        let span = bounds[j].1 - bounds[j].0;
        let step = (config.initial_step * span).max(1e-12);
        v[j] = if v[j] + step <= bounds[j].1 {
            v[j] + step
        } else {
            v[j] - step
        };
        clamp_to_bounds(&mut v, bounds);
        simplex.push(v);
    }
    let mut values: Vec<f64> = simplex.iter().map(|v| eval(v, &mut evaluations)).collect();

    // Every dimension frozen: nothing to search.
    if m == 0 {
        return NelderMeadResult {
            x: simplex.swap_remove(0),
            objective: values[0],
            iterations: 0,
            evaluations,
        };
    }

    let mut iterations = 0usize;
    while iterations < config.max_iterations {
        iterations += 1;
        // Order the simplex: best first.
        let mut order: Vec<usize> = (0..=m).collect();
        order.sort_by(|&a, &b| {
            values[a]
                .partial_cmp(&values[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let reorder: Vec<Vec<f64>> = order.iter().map(|&i| simplex[i].clone()).collect();
        let revalues: Vec<f64> = order.iter().map(|&i| values[i]).collect();
        simplex = reorder;
        values = revalues;

        if (values[m] - values[0]).abs() < config.ftol {
            break;
        }

        // Centroid of all but the worst vertex.
        let mut centroid = vec![0.0; n];
        for v in simplex.iter().take(m) {
            for j in 0..n {
                centroid[j] += v[j] / m as f64;
            }
        }

        // Reflection.
        let mut reflected: Vec<f64> = (0..n)
            .map(|j| centroid[j] + config.alpha * (centroid[j] - simplex[m][j]))
            .collect();
        clamp_to_bounds(&mut reflected, bounds);
        let f_reflected = eval(&reflected, &mut evaluations);

        if f_reflected < values[0] {
            // Expansion.
            let mut expanded: Vec<f64> = (0..n)
                .map(|j| centroid[j] + config.gamma * (reflected[j] - centroid[j]))
                .collect();
            clamp_to_bounds(&mut expanded, bounds);
            let f_expanded = eval(&expanded, &mut evaluations);
            if f_expanded < f_reflected {
                simplex[m] = expanded;
                values[m] = f_expanded;
            } else {
                simplex[m] = reflected;
                values[m] = f_reflected;
            }
        } else if f_reflected < values[m - 1] {
            simplex[m] = reflected;
            values[m] = f_reflected;
        } else {
            // Contraction (outside or inside depending on the reflected value).
            let towards = if f_reflected < values[m] {
                &reflected
            } else {
                &simplex[m]
            };
            let mut contracted: Vec<f64> = (0..n)
                .map(|j| centroid[j] + config.rho * (towards[j] - centroid[j]))
                .collect();
            clamp_to_bounds(&mut contracted, bounds);
            let f_contracted = eval(&contracted, &mut evaluations);
            // Ties are accepted (standard Nelder-Mead): on a plateau the
            // contracted point matches the reflected value exactly, and
            // rejecting it would trigger an m-evaluation shrink per
            // iteration for no improvement at all.
            if f_contracted <= values[m].min(f_reflected) {
                simplex[m] = contracted;
                values[m] = f_contracted;
            } else {
                // Shrink towards the best vertex.
                let best = simplex[0].clone();
                for i in 1..=m {
                    for j in 0..n {
                        simplex[i][j] = best[j] + config.sigma * (simplex[i][j] - best[j]);
                    }
                    clamp_to_bounds(&mut simplex[i], bounds);
                    values[i] = eval(&simplex[i], &mut evaluations);
                }
            }
        }
    }

    // Final ordering to report the best vertex.
    let best_idx = values
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0);
    NelderMeadResult {
        x: simplex[best_idx].clone(),
        objective: values[best_idx],
        iterations,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimises_quadratic() {
        let f = |x: &[f64]| (x[0] - 1.5).powi(2) + (x[1] + 0.5).powi(2);
        let bounds = vec![(-5.0, 5.0); 2];
        let res = nelder_mead(
            f,
            &[0.0, 0.0],
            &bounds,
            &NelderMeadConfig {
                max_iterations: 200,
                ..NelderMeadConfig::default()
            },
        );
        assert!(res.objective < 1e-6, "objective {}", res.objective);
        assert!((res.x[0] - 1.5).abs() < 1e-3);
        assert!((res.x[1] + 0.5).abs() < 1e-3);
    }

    #[test]
    fn respects_bounds() {
        // Unconstrained optimum at (3, 3) but the box is [0, 1]^2.
        let f = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] - 3.0).powi(2);
        let bounds = vec![(0.0, 1.0); 2];
        let res = nelder_mead(
            f,
            &[0.5, 0.5],
            &bounds,
            &NelderMeadConfig {
                max_iterations: 300,
                ..NelderMeadConfig::default()
            },
        );
        assert!(res.x.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!((res.x[0] - 1.0).abs() < 1e-2 && (res.x[1] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn improves_rosenbrock_from_offset_start() {
        let f = |x: &[f64]| {
            let a = 1.0 - x[0];
            let b = x[1] - x[0] * x[0];
            a * a + 100.0 * b * b
        };
        let bounds = vec![(-2.0, 2.0); 2];
        let start = [-1.0, 1.0];
        let f_start = f(&start);
        let res = nelder_mead(
            f,
            &start,
            &bounds,
            &NelderMeadConfig {
                max_iterations: 500,
                ..NelderMeadConfig::default()
            },
        );
        assert!(
            res.objective < f_start * 0.01,
            "objective {}",
            res.objective
        );
    }

    #[test]
    fn memetic_budget_is_short_but_still_improves() {
        let f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let bounds = vec![(-5.0, 5.0); 4];
        let start = [2.0, -2.0, 1.0, 3.0];
        let res = nelder_mead(f, &start, &bounds, &NelderMeadConfig::memetic_default());
        assert!(res.iterations <= 10);
        assert!(res.objective < f(&start));
    }

    #[test]
    fn iteration_and_evaluation_counts_are_reported() {
        let f = |x: &[f64]| x[0] * x[0];
        let bounds = vec![(-1.0, 1.0)];
        let res = nelder_mead(f, &[0.9], &bounds, &NelderMeadConfig::default());
        assert!(res.evaluations >= res.iterations);
        assert!(res.evaluations >= 2);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let f = |x: &[f64]| x[0];
        let _ = nelder_mead(f, &[0.0, 0.0], &[(-1.0, 1.0)], &NelderMeadConfig::default());
    }

    #[test]
    fn frozen_variables_do_not_degrade_the_simplex() {
        // One free dimension, five frozen (zero-span bounds, as produced by
        // a frozen design variable): the simplex must span only the free
        // dimension (2 vertices), not carry 5 duplicate vertices that waste
        // evaluations and silently degenerate the search.
        let f = |x: &[f64]| (x[0] - 0.33).powi(2);
        let mut bounds = vec![(0.25, 0.25); 6];
        bounds[0] = (-1.0, 1.0);
        let x0 = [0.9, 0.25, 0.25, 0.25, 0.25, 0.25];
        let res = nelder_mead(f, &x0, &bounds, &NelderMeadConfig::default());
        assert!(
            (res.x[0] - 0.33).abs() < 1e-3,
            "did not converge along the free dimension: {:?}",
            res.x
        );
        for j in 1..6 {
            assert_eq!(res.x[j], 0.25, "frozen variable {j} moved");
        }
        assert!(
            res.evaluations <= 60,
            "duplicate vertices wasted evaluations: {}",
            res.evaluations
        );
    }

    #[test]
    fn all_frozen_dimensions_return_the_start_point() {
        let f = |x: &[f64]| x[0] + x[1];
        let bounds = vec![(0.5, 0.5), (0.25, 0.25)];
        let res = nelder_mead(f, &[0.5, 0.25], &bounds, &NelderMeadConfig::default());
        assert_eq!(res.x, vec![0.5, 0.25]);
        assert_eq!(res.objective, 0.75);
        assert_eq!(res.evaluations, 1);
    }

    #[test]
    fn plateau_accepts_contraction_ties_without_shrinking() {
        // A constant objective with ftol 0 forces the contraction path every
        // iteration. Accepting the f_contracted == f_reflected tie (standard
        // Nelder-Mead) keeps the cost at ~2 evaluations per iteration; the
        // pre-fix strict `<` triggered a full n-evaluation shrink each time,
        // which on a flat (quantized Monte-Carlo yield) objective burns most
        // of the memetic budget for nothing.
        let f = |_x: &[f64]| 7.0;
        let bounds = vec![(-1.0, 1.0); 4];
        let config = NelderMeadConfig {
            ftol: 0.0,
            max_iterations: 10,
            ..NelderMeadConfig::default()
        };
        let res = nelder_mead(f, &[0.2; 4], &bounds, &config);
        assert_eq!(res.objective, 7.0);
        assert!(
            res.evaluations <= 5 + 10 * 2,
            "plateau triggered shrink storms: {} evaluations",
            res.evaluations
        );
    }

    #[test]
    fn converges_immediately_on_flat_function() {
        let f = |_x: &[f64]| 7.0;
        let bounds = vec![(-1.0, 1.0); 2];
        let res = nelder_mead(f, &[0.0, 0.0], &bounds, &NelderMeadConfig::default());
        assert_eq!(res.objective, 7.0);
        assert!(res.iterations <= 2);
    }
}
