//! Common result type returned by all search engines.

use crate::population::Individual;

/// Outcome of an optimization run.
#[derive(Debug, Clone)]
pub struct OptimizationResult {
    /// The best individual found.
    pub best: Individual,
    /// Number of generations (outer iterations) executed.
    pub generations: usize,
    /// Total number of objective evaluations consumed.
    pub evaluations: usize,
    /// Best objective value after each generation (for convergence plots).
    pub history: Vec<f64>,
}

impl OptimizationResult {
    /// Returns `true` when the best individual is feasible.
    pub fn is_feasible(&self) -> bool {
        self.best.eval.is_feasible()
    }

    /// The best objective value found.
    pub fn best_objective(&self) -> f64 {
        self.best.eval.objective
    }

    /// Number of generations needed to first reach an objective at or below
    /// `target`, or `None` if the target was never reached.
    pub fn generations_to_reach(&self, target: f64) -> Option<usize> {
        self.history
            .iter()
            .position(|&v| v <= target)
            .map(|g| g + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Evaluation;

    #[test]
    fn accessors() {
        let r = OptimizationResult {
            best: Individual::new(vec![1.0], Evaluation::feasible(0.5)),
            generations: 10,
            evaluations: 200,
            history: vec![5.0, 2.0, 1.0, 0.5],
        };
        assert!(r.is_feasible());
        assert_eq!(r.best_objective(), 0.5);
        assert_eq!(r.generations_to_reach(1.0), Some(3));
        assert_eq!(r.generations_to_reach(0.1), None);
    }
}
