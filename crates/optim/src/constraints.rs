//! Selection-based constraint handling (Deb's feasibility rules).
//!
//! The paper handles circuit performance specifications with the
//! selection-based method of Deb (2000), as combined with DE for analog
//! sizing in the authors' earlier work: when two candidates are compared,
//!
//! 1. a feasible candidate beats an infeasible one,
//! 2. two feasible candidates are compared on the objective,
//! 3. two infeasible candidates are compared on constraint violation.
//!
//! No penalty coefficients are needed, which is why the technique is popular
//! for simulation-based sizing where the objective and violation scales are
//! incommensurate.

use crate::problem::Evaluation;
use std::cmp::Ordering;

/// Compares two evaluations under Deb's feasibility rules, for minimisation.
///
/// Returns `Ordering::Less` when `a` is strictly better than `b`.
pub fn feasibility_compare(a: &Evaluation, b: &Evaluation) -> Ordering {
    match (a.is_feasible(), b.is_feasible()) {
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (true, true) => a
            .objective
            .partial_cmp(&b.objective)
            .unwrap_or(Ordering::Equal),
        (false, false) => a
            .constraint_violation
            .partial_cmp(&b.constraint_violation)
            .unwrap_or(Ordering::Equal),
    }
}

/// Returns `true` when `a` is better than or equivalent to `b` under the
/// feasibility rules (the acceptance test of DE's one-to-one selection).
pub fn is_better_or_equal(a: &Evaluation, b: &Evaluation) -> bool {
    feasibility_compare(a, b) != Ordering::Greater
}

/// Returns the index of the best evaluation in a slice under the feasibility
/// rules, or `None` for an empty slice.
pub fn best_index(evals: &[Evaluation]) -> Option<usize> {
    if evals.is_empty() {
        return None;
    }
    let mut best = 0;
    for i in 1..evals.len() {
        if feasibility_compare(&evals[i], &evals[best]) == Ordering::Less {
            best = i;
        }
    }
    Some(best)
}

/// Aggregates a set of individual constraint violations (each non-negative,
/// 0 = satisfied) into the scalar violation used by the comparator.
///
/// Violations are summed; any NaN is treated as an infinite violation so a
/// failed simulation can never look feasible.
pub fn aggregate_violations<I: IntoIterator<Item = f64>>(violations: I) -> f64 {
    let mut total = 0.0;
    for v in violations {
        if v.is_nan() {
            return f64::INFINITY;
        }
        total += v.max(0.0);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasible_beats_infeasible() {
        let f = Evaluation::feasible(100.0);
        let i = Evaluation::infeasible(0.001);
        assert_eq!(feasibility_compare(&f, &i), Ordering::Less);
        assert_eq!(feasibility_compare(&i, &f), Ordering::Greater);
        assert!(is_better_or_equal(&f, &i));
        assert!(!is_better_or_equal(&i, &f));
    }

    #[test]
    fn two_feasible_compare_on_objective() {
        let a = Evaluation::feasible(1.0);
        let b = Evaluation::feasible(2.0);
        assert_eq!(feasibility_compare(&a, &b), Ordering::Less);
        assert_eq!(feasibility_compare(&b, &a), Ordering::Greater);
        assert_eq!(feasibility_compare(&a, &a), Ordering::Equal);
    }

    #[test]
    fn two_infeasible_compare_on_violation() {
        let a = Evaluation::infeasible(0.5);
        let b = Evaluation::infeasible(2.0);
        assert_eq!(feasibility_compare(&a, &b), Ordering::Less);
        assert!(is_better_or_equal(&a, &b));
    }

    #[test]
    fn equal_evaluations_accepted_by_selection() {
        let a = Evaluation::feasible(3.0);
        assert!(is_better_or_equal(&a, &a));
    }

    #[test]
    fn best_index_picks_feasible_minimum() {
        let evals = vec![
            Evaluation::infeasible(0.1),
            Evaluation::feasible(5.0),
            Evaluation::feasible(2.0),
            Evaluation::infeasible(0.001),
        ];
        assert_eq!(best_index(&evals), Some(2));
        assert_eq!(best_index(&[]), None);
    }

    #[test]
    fn best_index_among_all_infeasible() {
        let evals = vec![
            Evaluation::infeasible(3.0),
            Evaluation::infeasible(0.5),
            Evaluation::infeasible(1.0),
        ];
        assert_eq!(best_index(&evals), Some(1));
    }

    #[test]
    fn aggregation_sums_positive_parts() {
        assert_eq!(aggregate_violations([0.0, 1.0, 2.0]), 3.0);
        assert_eq!(aggregate_violations([-5.0, 0.0]), 0.0);
        assert!(aggregate_violations([1.0, f64::NAN]).is_infinite());
        assert_eq!(aggregate_violations(std::iter::empty::<f64>()), 0.0);
    }
}
