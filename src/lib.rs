//! `moheco-repro` — umbrella crate of the MOHECO (DATE 2010) reproduction.
//!
//! This crate exists to host the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); it simply re-exports the
//! workspace crates so the examples can use one coherent namespace:
//!
//! * [`moheco`] — the MOHECO yield optimizer and its baselines.
//! * [`moheco_analog`] — the two benchmark amplifiers of the paper.
//! * [`moheco_process`] — statistical process models (0.35 µm and 90 nm).
//! * [`moheco_sampling`] — Monte-Carlo / LHS / acceptance-sampling machinery
//!   and the closed-form yield oracles.
//! * [`moheco_scenarios`] — the scenario registry: corner-parameterized
//!   circuits plus synthetic analytic benchmarks with exact yields.
//! * [`moheco_ocba`] — ordinal optimization and computing-budget allocation.
//! * [`moheco_optim`] — DE, Nelder–Mead, memetic coupling and baselines.
//! * [`moheco_surrogate`] — the §3.4 response-surface and PSWCD baselines.
//! * [`moheco_runtime`] — the parallel, cached, deterministic
//!   simulation-evaluation engine every crate dispatches through.
//! * [`spicelite`] — the lightweight circuit-simulation substrate.
//!
//! See the repository `README.md` for a tour and `DESIGN.md` for the mapping
//! between the paper and the code.

#![warn(missing_docs)]

pub use moheco;
pub use moheco_analog;
pub use moheco_ocba;
pub use moheco_optim;
pub use moheco_process;
pub use moheco_runtime;
pub use moheco_sampling;
pub use moheco_scenarios;
pub use moheco_surrogate;
pub use spicelite;
