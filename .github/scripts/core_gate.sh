#!/usr/bin/env bash
# Threshold gate with single-core leniency, shared by every perf gate in CI:
# pass when value >= threshold; below it, emit a workflow warning on shared
# 1-core runners (too noisy and too serialized to hard-fail on) and fail the
# job on multi-core runners.
#
# Usage: core_gate.sh <metric-name> <value> <threshold> <cores> [context]
set -euo pipefail

name=$1
value=$2
threshold=$3
cores=$4
context=${5:-}

echo "$name=$value threshold=$threshold cores=$cores"
if awk "BEGIN{exit !($value >= $threshold)}"; then
  echo "$name $value meets the $threshold target"
elif [ "$cores" -le 1 ]; then
  echo "::warning::$name $value below the $threshold target on a 1-core runner; not failing. $context"
else
  echo "$name $value below the $threshold target on $cores cores. $context"
  exit 1
fi
