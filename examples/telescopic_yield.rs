//! Example 2 workload: yield optimization of the two-stage telescopic-cascode
//! amplifier in 90 nm under its severe specification set (gain, GBW, phase
//! margin, swing, power, area and offset), as in §3.3 of the paper.
//!
//! ```text
//! cargo run --release --example telescopic_yield
//! ```

use moheco::{MohecoConfig, YieldOptimizer, YieldProblem};
use moheco_analog::{TelescopicTwoStage, Testbench};
use moheco_sampling::SamplingPlan;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let testbench = TelescopicTwoStage::new();
    println!("circuit: {}", testbench.name());
    println!(
        "{} design variables, {} transistors, {} statistical variables, {} specifications",
        testbench.dimension(),
        testbench.num_devices(),
        testbench
            .technology()
            .num_variables(testbench.num_devices()),
        testbench.specs().len()
    );

    // Show how tight the specifications are at the hand-crafted reference
    // sizing before optimizing.
    let reference_perf = testbench.evaluate_nominal(&testbench.reference_design());
    println!("\nreference sizing nominal performances:");
    println!("  A0    = {:>8.1} dB", reference_perf.a0_db);
    println!("  GBW   = {:>8.1} MHz", reference_perf.gbw_hz / 1e6);
    println!("  PM    = {:>8.1} deg", reference_perf.pm_deg);
    println!("  OS    = {:>8.2} V", reference_perf.output_swing_v);
    println!("  power = {:>8.2} mW", reference_perf.power_w * 1e3);
    println!("  area  = {:>8.1} um^2", reference_perf.area_um2);

    let problem = YieldProblem::new(testbench, SamplingPlan::LatinHypercube);
    let optimizer = YieldOptimizer::new(MohecoConfig::fast());
    let mut rng = StdRng::seed_from_u64(90);
    let result = optimizer.run(&problem, &mut rng);

    println!("\n=== MOHECO on example 2 ===");
    println!("reported yield    : {:.1}%", 100.0 * result.reported_yield);
    println!("total simulations : {}", result.total_simulations);
    println!("generations       : {}", result.generations);
    println!("best sizing:");
    for (var, value) in problem
        .testbench()
        .design_variables()
        .iter()
        .zip(&result.best_x)
    {
        println!("  {:<8} = {:>9.3} {}", var.name, value, var.unit);
    }
}
