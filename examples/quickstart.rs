//! Quickstart: optimize the yield of the folded-cascode amplifier with MOHECO.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use moheco::{MohecoConfig, YieldOptimizer, YieldProblem};
use moheco_analog::{FoldedCascode, Testbench};
use moheco_sampling::SamplingPlan;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. The benchmark circuit: a fully differential folded-cascode OTA in a
    //    0.35 um / 3.3 V technology, specified on gain, GBW, phase margin,
    //    output swing and power (example 1 of the paper).
    let testbench = FoldedCascode::new();
    println!("circuit: {}", testbench.name());
    println!(
        "design variables: {}   statistical variables: {}",
        testbench.dimension(),
        testbench
            .technology()
            .num_variables(testbench.num_devices())
    );

    // 2. Wrap it into a yield problem (Latin Hypercube sampling, acceptance
    //    sampling screen and a shared simulation counter).
    let problem = YieldProblem::new(testbench, SamplingPlan::LatinHypercube);

    // 3. Run MOHECO with scaled-down settings so this example finishes in
    //    seconds; `MohecoConfig::paper()` gives the paper's full settings.
    let optimizer = YieldOptimizer::new(MohecoConfig::fast());
    let mut rng = StdRng::seed_from_u64(42);
    let result = optimizer.run(&problem, &mut rng);

    println!("\n=== MOHECO result ===");
    println!(
        "reported yield      : {:.1}%",
        100.0 * result.reported_yield
    );
    println!("total simulations   : {}", result.total_simulations);
    println!("generations         : {}", result.generations);
    println!("local searches (NM) : {}", result.local_searches);
    println!("best sizing:");
    for (var, value) in problem
        .testbench()
        .design_variables()
        .iter()
        .zip(&result.best_x)
    {
        println!("  {:<8} = {:>9.3} {}", var.name, value, var.unit);
    }

    println!("\nbest-yield history per generation:");
    for (g, y) in result.history().iter().enumerate() {
        println!("  gen {:>3}: {:>6.1}%", g, 100.0 * y);
    }
}
