//! Nominal (variation-free) sizing of the folded-cascode amplifier with the
//! search engines compared in the paper: DE with selection-based constraint
//! handling, the memetic DE+NM engine and a genetic algorithm.
//!
//! ```text
//! cargo run --release --example nominal_sizing
//! ```

use moheco_analog::{FoldedCascode, Testbench};
use moheco_optim::de::{DeConfig, DifferentialEvolution};
use moheco_optim::ga::{GaConfig, GeneticAlgorithm};
use moheco_optim::memetic::{MemeticConfig, MemeticOptimizer};
use moheco_optim::problem::{Evaluation, FnProblem};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the nominal sizing problem: minimise the aggregate spec violation,
/// then maximise the worst margin once feasible.
fn sizing_problem() -> FnProblem<impl FnMut(&[f64]) -> Evaluation> {
    let tb = FoldedCascode::new();
    let bounds = tb.bounds();
    FnProblem::new(tb.dimension(), bounds, move |x: &[f64]| {
        let margins = tb.nominal_margins(x);
        let violation: f64 = margins.iter().filter(|&&m| m < 0.0).map(|&m| -m).sum();
        if violation > 0.0 {
            Evaluation::new(violation, violation)
        } else {
            let worst = margins.iter().cloned().fold(f64::INFINITY, f64::min);
            Evaluation::feasible(-worst)
        }
    })
}

fn main() {
    let population = 24;
    let generations = 40;
    println!("Nominal sizing of the folded-cascode amplifier (no process variation)\n");

    let de_cfg = DeConfig {
        population_size: population,
        max_generations: generations,
        stagnation_limit: None,
        ..DeConfig::default()
    };

    let de = DifferentialEvolution::new(de_cfg)
        .run(&mut sizing_problem(), &mut StdRng::seed_from_u64(1));
    println!(
        "DE + Deb rules     : feasible {:>5}, best worst-margin {:>7.3}, {} evaluations",
        de.is_feasible(),
        -de.best_objective(),
        de.evaluations
    );

    let memetic = MemeticOptimizer::new(MemeticConfig {
        de: de_cfg,
        ..MemeticConfig::default()
    })
    .run(&mut sizing_problem(), &mut StdRng::seed_from_u64(1));
    println!(
        "Memetic DE + NM    : feasible {:>5}, best worst-margin {:>7.3}, {} evaluations",
        memetic.is_feasible(),
        -memetic.best_objective(),
        memetic.evaluations
    );

    let ga = GeneticAlgorithm::new(GaConfig {
        population_size: population,
        max_generations: generations,
        stagnation_limit: None,
        ..GaConfig::default()
    })
    .run(&mut sizing_problem(), &mut StdRng::seed_from_u64(1));
    println!(
        "Genetic algorithm  : feasible {:>5}, best worst-margin {:>7.3}, {} evaluations",
        ga.is_feasible(),
        -ga.best_objective(),
        ga.evaluations
    );

    println!("\nAs in the paper, the DE-based engines find fully feasible sizings quickly;");
    println!("the memetic variant refines the margins further for the same budget.");
}
