//! Demonstrates the ordinal-optimization / OCBA machinery on its own: a bank
//! of noisy Bernoulli "designs" (simulated yields) is ranked with far fewer
//! samples than uniform allocation would need — the effect behind Fig. 3 of
//! the paper.
//!
//! ```text
//! cargo run --release --example budget_allocation
//! ```

use moheco_ocba::allocation::allocate;
use moheco_ocba::ordinal::{rank_descending, selected_subset};
use moheco_ocba::sequential::{run_sequential, SequentialConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // True (unknown) yields of ten candidate designs.
    let true_yields = [0.97, 0.95, 0.91, 0.86, 0.78, 0.66, 0.52, 0.41, 0.28, 0.12];
    let mut rng = StdRng::seed_from_u64(2024);

    // Run the sequential OCBA loop with the paper's parameters (n0 = 15,
    // sim_ave = 35 per design on average).
    let config = SequentialConfig::paper_default(true_yields.len());
    let outcome = run_sequential(true_yields.len(), config, |design, n| {
        (0..n)
            .map(|_| {
                if rng.gen::<f64>() < true_yields[design] {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    })
    .expect("at least two designs");

    println!("design   true yield   estimated   samples allocated");
    for (i, stats) in outcome.stats.iter().enumerate() {
        println!(
            "{:>6}   {:>9.2}%   {:>8.2}%   {:>6}",
            i,
            100.0 * true_yields[i],
            100.0 * stats.mean,
            outcome.spent[i]
        );
    }
    println!(
        "\ntotal samples: {} (uniform allocation would also use {}, but spread evenly)",
        outcome.total_spent, config.total_budget
    );
    println!("best design found: {}", outcome.best_design());

    // How good is the ranking?
    let estimated = outcome.means();
    let observed_top3 = selected_subset(&estimated, 3);
    let true_top3 = selected_subset(true_yields.as_ref(), 3);
    println!(
        "observed top-3 {:?} vs true top-3 {:?}",
        observed_top3, true_top3
    );

    // A one-shot OCBA allocation for a fresh budget, given the estimates.
    let variances: Vec<f64> = outcome
        .stats
        .iter()
        .map(|s| s.variance().max(1e-4))
        .collect();
    let next_allocation = allocate(&estimated, &variances, 350).expect("valid inputs");
    println!("\nnext-round OCBA allocation of 350 samples: {next_allocation:?}");
    println!(
        "ranking of designs by estimated yield: {:?}",
        rank_descending(&estimated)
    );
}
