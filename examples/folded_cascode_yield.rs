//! Example 1 workload: compare MOHECO against the fixed-budget AS+LHS flow on
//! the folded-cascode amplifier and report the yield accuracy and the number
//! of circuit simulations each method needed (a miniature of Tables 1 and 2).
//!
//! ```text
//! cargo run --release --example folded_cascode_yield
//! ```

use moheco::{MohecoConfig, YieldOptimizer, YieldProblem};
use moheco_analog::FoldedCascode;
use moheco_sampling::SamplingPlan;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(label: &str, config: MohecoConfig, seed: u64) {
    let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
    let optimizer = YieldOptimizer::new(config);
    let mut rng = StdRng::seed_from_u64(seed);
    let result = optimizer.run(&problem, &mut rng);
    // Reference yield of the final sizing (plays the role of the paper's
    // 50 000-sample MC check; scaled down here).
    let mut ref_rng = StdRng::seed_from_u64(seed ^ 0xACC0);
    let reference = problem.reference_yield(&result.best_x, 4_000, &mut ref_rng);
    println!(
        "{:<24} reported {:>6.1}%  reference {:>6.1}%  deviation {:>5.2} pp  simulations {:>8}",
        label,
        100.0 * result.reported_yield,
        100.0 * reference,
        (result.reported_yield - reference).abs() * 100.0,
        result.total_simulations
    );
}

fn main() {
    println!("Example 1: folded-cascode amplifier, 0.35 um CMOS (scaled-down settings)\n");
    let base = MohecoConfig::fast();
    run("AS+LHS, 100 sims", base.as_fixed_budget(100), 7);
    run("OO+AS+LHS", base.as_oo_without_memetic(), 7);
    run("MOHECO", base, 7);
    println!("\nExpected shape (paper, Tables 1-2): all methods reach a comparable deviation,");
    println!("but MOHECO consumes a small fraction (~1/7) of the fixed-budget simulations.");
}
